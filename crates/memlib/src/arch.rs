//! Memory architectures: modules plus a data-structure→module mapping.

use crate::cache::CacheConfig;
use crate::cost::{module_gates, SYSTEM_BASE_GATES};
use crate::dram::DramConfig;
use crate::module::{MemModule, MemModuleKind};
use mce_appmodel::{AccessPattern, DsId, Workload};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Index of a module within a [`MemoryArchitecture`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModuleId(usize);

impl ModuleId {
    /// Creates an id from a raw index.
    pub const fn new(index: usize) -> Self {
        ModuleId(index)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Validation failure for a memory architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// The architecture has no off-chip DRAM module.
    MissingDram,
    /// More than one DRAM module was declared.
    MultipleDram,
    /// A data structure has no mapping entry.
    UnmappedDataStructure(DsId),
    /// A mapping refers to a module index that does not exist.
    BadModuleId(ModuleId),
    /// Structures mapped to an SRAM exceed its capacity.
    SramOverflow {
        /// The overflowing scratchpad.
        module: ModuleId,
        /// Total mapped footprint in bytes.
        mapped: u64,
        /// The scratchpad capacity in bytes.
        capacity: u64,
    },
    /// A pattern-specific module was given traffic it cannot serve.
    PatternMismatch {
        /// The module with the incompatible mapping.
        module: ModuleId,
        /// The offending data structure.
        ds: DsId,
    },
    /// A backing declaration is invalid: dangling id, non-cache target,
    /// off-chip target, or a cycle in the backing chain.
    BadBacking {
        /// The module with the invalid backing.
        module: ModuleId,
        /// What is wrong.
        reason: &'static str,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::MissingDram => write!(f, "architecture has no off-chip DRAM"),
            ArchError::MultipleDram => write!(f, "architecture has more than one off-chip DRAM"),
            ArchError::UnmappedDataStructure(ds) => {
                write!(f, "data structure {ds} has no module mapping")
            }
            ArchError::BadModuleId(m) => write!(f, "mapping references unknown module {m}"),
            ArchError::SramOverflow {
                module,
                mapped,
                capacity,
            } => write!(
                f,
                "scratchpad {module} overflows: {mapped} bytes mapped into {capacity}"
            ),
            ArchError::PatternMismatch { module, ds } => {
                write!(f, "module {module} cannot serve the access pattern of {ds}")
            }
            ArchError::BadBacking { module, reason } => {
                write!(f, "module {module} has invalid backing: {reason}")
            }
        }
    }
}

impl Error for ArchError {}

/// A memory-module architecture: a set of named modules (exactly one
/// off-chip DRAM) and the mapping that assigns every application data
/// structure to the module serving it.
///
/// Built either with the convenience constructors or the builder:
///
/// ```
/// use mce_memlib::{CacheConfig, MemModuleKind, MemoryArchitecture};
/// use mce_appmodel::{benchmarks, DsId};
///
/// let w = benchmarks::li();
/// let arch = MemoryArchitecture::builder("li_dma")
///     .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(4)))
///     .module("list_dma", MemModuleKind::SelfIndirectDma { depth: 8, element_bytes: 8 })
///     .map(DsId::new(0), 1)   // cons_heap -> DMA
///     .map_rest_to(0)          // everything else -> cache
///     .build(&w)
///     .expect("valid architecture");
/// assert_eq!(arch.on_chip_modules().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryArchitecture {
    name: String,
    modules: Vec<MemModule>,
    /// Per-DsId serving module.
    mapping: Vec<ModuleId>,
    /// Per-module backing store: `Some(l2)` chains the module's misses,
    /// prefetches and writebacks to another on-chip module (a next-level
    /// cache); `None` means they go straight to the off-chip DRAM. Index-
    /// aligned with `modules`.
    #[serde(default)]
    backing: Vec<Option<ModuleId>>,
}

impl MemoryArchitecture {
    /// Starts a builder. A default off-chip DRAM is appended automatically
    /// at build time if none was declared.
    pub fn builder(name: impl Into<String>) -> ArchBuilder {
        ArchBuilder {
            name: name.into(),
            modules: Vec::new(),
            explicit_map: Vec::new(),
            rest_to: None,
            backing: Vec::new(),
        }
    }

    /// The classic baseline: a single cache serving every data structure,
    /// backed by a default DRAM (the paper's "traditional cache-only memory
    /// configuration").
    pub fn cache_only(workload: &Workload, cache: CacheConfig) -> Self {
        Self::builder(format!("cache{}k_only", cache.size_bytes / 1024))
            .module("L1", MemModuleKind::Cache(cache))
            .map_rest_to(0)
            .build(workload)
            .expect("cache-only architecture is always valid")
    }

    /// The architecture's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All modules, indexable by [`ModuleId`].
    pub fn modules(&self) -> &[MemModule] {
        &self.modules
    }

    /// The module for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn module(&self, id: ModuleId) -> &MemModule {
        &self.modules[id.index()]
    }

    /// Id of the unique off-chip DRAM module.
    pub fn dram_id(&self) -> ModuleId {
        self.modules
            .iter()
            .position(|m| !m.kind().is_on_chip())
            .map(ModuleId::new)
            .expect("validated architecture always has a DRAM")
    }

    /// The DRAM configuration.
    pub fn dram_config(&self) -> DramConfig {
        match self.module(self.dram_id()).kind() {
            MemModuleKind::OffChipDram(cfg) => cfg,
            _ => unreachable!("dram_id points at the DRAM"),
        }
    }

    /// The serving module of data structure `ds`.
    ///
    /// # Panics
    ///
    /// Panics if `ds` is outside the workload the architecture was built for.
    pub fn serving_module(&self, ds: DsId) -> ModuleId {
        self.mapping[ds.index()]
    }

    /// The module that absorbs `module`'s off-path traffic: `Some(l2)` for
    /// a backed module, `None` when it talks straight to the DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    pub fn backing_of(&self, module: ModuleId) -> Option<ModuleId> {
        self.backing.get(module.index()).copied().flatten()
    }

    /// True if any module is served by `module` as its backing store.
    pub fn is_backing_target(&self, module: ModuleId) -> bool {
        self.backing.contains(&Some(module))
    }

    /// True if `module` serves at least one data structure directly.
    pub fn serves_data(&self, module: ModuleId) -> bool {
        self.mapping.contains(&module)
    }

    /// Iterator over `(ModuleId, &MemModule)` of the on-chip modules.
    pub fn on_chip_modules(&self) -> impl Iterator<Item = (ModuleId, &MemModule)> {
        self.modules
            .iter()
            .enumerate()
            .filter(|(_, m)| m.kind().is_on_chip())
            .map(|(i, m)| (ModuleId::new(i), m))
    }

    /// Total gate cost of the memory modules including the per-system base
    /// (bus interface unit, pads).
    pub fn gate_cost(&self) -> u64 {
        SYSTEM_BASE_GATES
            + self
                .modules
                .iter()
                .map(|m| module_gates(m.kind()))
                .sum::<u64>()
    }

    /// A short human-readable composition string for reports, e.g.
    /// `"cache 8K 2-way 32B lines + linked-list DMA depth=8 elem=8B"`.
    pub fn describe(&self) -> String {
        self.on_chip_modules()
            .map(|(_, m)| m.kind().to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Checks the architecture against a workload.
    ///
    /// # Errors
    ///
    /// Returns the first [`ArchError`] found: missing/duplicate DRAM,
    /// unmapped structures, dangling module ids, scratchpad overflow, or a
    /// pattern-specific module (stream buffer / self-indirect DMA) mapped to
    /// traffic it cannot serve.
    pub fn validate(&self, workload: &Workload) -> Result<(), ArchError> {
        let dram_count = self
            .modules
            .iter()
            .filter(|m| !m.kind().is_on_chip())
            .count();
        if dram_count == 0 {
            return Err(ArchError::MissingDram);
        }
        if dram_count > 1 {
            return Err(ArchError::MultipleDram);
        }
        if self.mapping.len() < workload.len() {
            return Err(ArchError::UnmappedDataStructure(DsId::new(
                self.mapping.len(),
            )));
        }
        // Scratchpad occupancy and pattern compatibility.
        let mut sram_load = vec![0u64; self.modules.len()];
        for (i, ds) in workload.data_structures().iter().enumerate() {
            let target = self.mapping[i];
            let module = self
                .modules
                .get(target.index())
                .ok_or(ArchError::BadModuleId(target))?;
            match module.kind() {
                MemModuleKind::Sram { .. } => sram_load[target.index()] += ds.footprint(),
                MemModuleKind::StreamBuffer { .. } => {
                    if !matches!(ds.pattern(), AccessPattern::Stream { .. }) {
                        return Err(ArchError::PatternMismatch {
                            module: target,
                            ds: DsId::new(i),
                        });
                    }
                }
                MemModuleKind::Fifo { .. } => {
                    // FIFOs drain produced streams: stream pattern, mostly
                    // writes.
                    if !matches!(ds.pattern(), AccessPattern::Stream { .. })
                        || ds.write_fraction() < 0.5
                    {
                        return Err(ArchError::PatternMismatch {
                            module: target,
                            ds: DsId::new(i),
                        });
                    }
                }
                MemModuleKind::SelfIndirectDma { .. } => {
                    if !matches!(
                        ds.pattern(),
                        AccessPattern::SelfIndirect | AccessPattern::Indexed { .. }
                    ) {
                        return Err(ArchError::PatternMismatch {
                            module: target,
                            ds: DsId::new(i),
                        });
                    }
                }
                MemModuleKind::Cache(_) | MemModuleKind::OffChipDram(_) => {}
            }
        }
        for (i, m) in self.modules.iter().enumerate() {
            if let MemModuleKind::Sram { bytes } = m.kind() {
                if sram_load[i] > bytes {
                    return Err(ArchError::SramOverflow {
                        module: ModuleId::new(i),
                        mapped: sram_load[i],
                        capacity: bytes,
                    });
                }
            }
        }
        // Backing chains: targets must be on-chip caches; chains must be
        // acyclic.
        for (i, b) in self.backing.iter().enumerate() {
            let module = ModuleId::new(i);
            let Some(target) = *b else { continue };
            let Some(t) = self.modules.get(target.index()) else {
                return Err(ArchError::BadBacking {
                    module,
                    reason: "backing target does not exist",
                });
            };
            if !matches!(t.kind(), MemModuleKind::Cache(_)) {
                return Err(ArchError::BadBacking {
                    module,
                    reason: "backing target must be an on-chip cache",
                });
            }
            if target == module {
                return Err(ArchError::BadBacking {
                    module,
                    reason: "module cannot back itself",
                });
            }
            // Walk the chain; more hops than modules means a cycle.
            let mut hops = 0;
            let mut cursor = Some(target);
            while let Some(c) = cursor {
                hops += 1;
                if hops > self.modules.len() {
                    return Err(ArchError::BadBacking {
                        module,
                        reason: "backing chain has a cycle",
                    });
                }
                cursor = self.backing.get(c.index()).copied().flatten();
            }
        }
        Ok(())
    }
}

impl fmt::Display for MemoryArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.describe())
    }
}

/// Builder for [`MemoryArchitecture`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct ArchBuilder {
    name: String,
    modules: Vec<MemModule>,
    explicit_map: Vec<(DsId, usize)>,
    rest_to: Option<usize>,
    backing: Vec<(usize, usize)>,
}

impl ArchBuilder {
    /// Adds a module; returns the builder for chaining. Modules are indexed
    /// in insertion order (the indices used by [`ArchBuilder::map`]).
    pub fn module(mut self, name: impl Into<String>, kind: MemModuleKind) -> Self {
        self.modules.push(MemModule::new(name, kind));
        self
    }

    /// Maps data structure `ds` to the module at insertion index
    /// `module_index`.
    pub fn map(mut self, ds: DsId, module_index: usize) -> Self {
        self.explicit_map.push((ds, module_index));
        self
    }

    /// Maps every not-explicitly-mapped data structure to the module at
    /// `module_index`.
    pub fn map_rest_to(mut self, module_index: usize) -> Self {
        self.rest_to = Some(module_index);
        self
    }

    /// Chains the module at `module_index` to a next-level on-chip cache at
    /// `backing_index` (an L2): its misses, prefetches and writebacks go
    /// there instead of straight to DRAM. An extension beyond the paper's
    /// single-level template.
    pub fn backed_by(mut self, module_index: usize, backing_index: usize) -> Self {
        self.backing.push((module_index, backing_index));
        self
    }

    /// Finalizes and validates against `workload`.
    ///
    /// A default [`DramConfig::typical`] off-chip DRAM is appended if the
    /// builder declared none. Data structures without an explicit mapping go
    /// to the `map_rest_to` target, or to the DRAM if none was set.
    ///
    /// # Errors
    ///
    /// Returns any [`ArchError`] produced by
    /// [`MemoryArchitecture::validate`].
    pub fn build(self, workload: &Workload) -> Result<MemoryArchitecture, ArchError> {
        let mut modules = self.modules;
        if !modules.iter().any(|m| !m.kind().is_on_chip()) {
            modules.push(MemModule::new(
                "dram",
                MemModuleKind::OffChipDram(DramConfig::typical()),
            ));
        }
        let dram_index = modules
            .iter()
            .position(|m| !m.kind().is_on_chip())
            .expect("just ensured a DRAM exists");
        let fallback = self.rest_to.unwrap_or(dram_index);
        let mut mapping = vec![ModuleId::new(fallback); workload.len()];
        for (ds, idx) in self.explicit_map {
            if ds.index() >= mapping.len() {
                return Err(ArchError::UnmappedDataStructure(ds));
            }
            mapping[ds.index()] = ModuleId::new(idx);
        }
        let mut backing = vec![None; modules.len()];
        for (m, b) in self.backing {
            if m >= modules.len() {
                return Err(ArchError::BadBacking {
                    module: ModuleId::new(m),
                    reason: "backing declared for unknown module",
                });
            }
            backing[m] = Some(ModuleId::new(b));
        }
        let arch = MemoryArchitecture {
            name: self.name,
            modules,
            mapping,
            backing,
        };
        arch.validate(workload)?;
        Ok(arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::benchmarks;

    #[test]
    fn cache_only_is_valid_and_costed() {
        let w = benchmarks::compress();
        let a = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(8));
        assert!(a.validate(&w).is_ok());
        assert!(a.gate_cost() > SYSTEM_BASE_GATES);
        assert_eq!(a.on_chip_modules().count(), 1);
    }

    #[test]
    fn dram_is_appended_automatically() {
        let w = benchmarks::vocoder();
        let a = MemoryArchitecture::builder("x")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(2)))
            .map_rest_to(0)
            .build(&w)
            .unwrap();
        assert_eq!(a.modules().len(), 2);
        assert_eq!(a.dram_id(), ModuleId::new(1));
    }

    #[test]
    fn stream_buffer_rejects_non_stream_traffic() {
        let w = benchmarks::compress(); // ds0 = htab (self-indirect)
        let err = MemoryArchitecture::builder("bad")
            .module(
                "sb",
                MemModuleKind::StreamBuffer {
                    entries: 4,
                    line_bytes: 32,
                },
            )
            .map(DsId::new(0), 0)
            .map_rest_to(0)
            .build(&w)
            .unwrap_err();
        assert!(matches!(err, ArchError::PatternMismatch { .. }));
    }

    #[test]
    fn dma_accepts_self_indirect() {
        let w = benchmarks::li(); // ds0 = cons_heap (self-indirect)
        let a = MemoryArchitecture::builder("dma")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(4)))
            .module(
                "dma",
                MemModuleKind::SelfIndirectDma {
                    depth: 8,
                    element_bytes: 8,
                },
            )
            .map(DsId::new(0), 1)
            .map_rest_to(0)
            .build(&w);
        assert!(a.is_ok());
    }

    #[test]
    fn dma_rejects_stream_traffic() {
        let w = benchmarks::vocoder(); // ds0 = speech_in (stream)
        let err = MemoryArchitecture::builder("bad")
            .module(
                "dma",
                MemModuleKind::SelfIndirectDma {
                    depth: 8,
                    element_bytes: 8,
                },
            )
            .map(DsId::new(0), 0)
            .map_rest_to(0)
            .build(&w)
            .unwrap_err();
        assert!(matches!(err, ArchError::PatternMismatch { .. }));
    }

    #[test]
    fn sram_overflow_detected() {
        let w = benchmarks::compress(); // ds4 = locals (2 KiB)
        let err = MemoryArchitecture::builder("tiny")
            .module("sp", MemModuleKind::Sram { bytes: 1024 })
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(4)))
            .map(DsId::new(4), 0)
            .map_rest_to(1)
            .build(&w)
            .unwrap_err();
        assert!(matches!(err, ArchError::SramOverflow { .. }));
    }

    #[test]
    fn sram_fit_accepted() {
        let w = benchmarks::compress();
        let a = MemoryArchitecture::builder("sp")
            .module("sp", MemModuleKind::Sram { bytes: 4096 })
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(4)))
            .map(DsId::new(4), 0) // locals, 2 KiB
            .map_rest_to(1)
            .build(&w);
        assert!(a.is_ok());
    }

    #[test]
    fn bad_module_index_detected() {
        let w = benchmarks::vocoder();
        let err = MemoryArchitecture::builder("dangling")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(2)))
            .map(DsId::new(0), 7)
            .map_rest_to(0)
            .build(&w)
            .unwrap_err();
        assert!(matches!(err, ArchError::BadModuleId(_)));
    }

    #[test]
    fn describe_lists_on_chip_modules() {
        let w = benchmarks::li();
        let a = MemoryArchitecture::builder("d")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(4)))
            .module(
                "dma",
                MemModuleKind::SelfIndirectDma {
                    depth: 8,
                    element_bytes: 8,
                },
            )
            .map(DsId::new(0), 1)
            .map_rest_to(0)
            .build(&w)
            .unwrap();
        let d = a.describe();
        assert!(d.contains("cache"), "{d}");
        assert!(d.contains("DMA"), "{d}");
        assert!(!d.contains("DRAM"), "{d}");
    }

    #[test]
    fn unmapped_fallback_goes_to_dram() {
        let w = benchmarks::vocoder();
        let a = MemoryArchitecture::builder("raw").build(&w).unwrap();
        let dram = a.dram_id();
        for i in 0..w.len() {
            assert_eq!(a.serving_module(DsId::new(i)), dram);
        }
    }

    #[test]
    fn backed_l1_l2_validates() {
        let w = benchmarks::compress();
        let a = MemoryArchitecture::builder("two_level")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(2)))
            .module("L2", MemModuleKind::Cache(CacheConfig::kilobytes(16)))
            .map_rest_to(0)
            .backed_by(0, 1)
            .build(&w)
            .unwrap();
        assert_eq!(a.backing_of(ModuleId::new(0)), Some(ModuleId::new(1)));
        assert_eq!(a.backing_of(ModuleId::new(1)), None);
        assert!(a.is_backing_target(ModuleId::new(1)));
        assert!(a.serves_data(ModuleId::new(0)));
        assert!(!a.serves_data(ModuleId::new(1)));
    }

    #[test]
    fn backing_cycle_rejected() {
        let w = benchmarks::vocoder();
        let err = MemoryArchitecture::builder("cycle")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(2)))
            .module("L2", MemModuleKind::Cache(CacheConfig::kilobytes(4)))
            .map_rest_to(0)
            .backed_by(0, 1)
            .backed_by(1, 0)
            .build(&w)
            .unwrap_err();
        assert!(matches!(
            err,
            ArchError::BadBacking {
                reason: "backing chain has a cycle",
                ..
            }
        ));
    }

    #[test]
    fn backing_must_be_cache() {
        let w = benchmarks::vocoder();
        let err = MemoryArchitecture::builder("bad")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(2)))
            .module("sp", MemModuleKind::Sram { bytes: 1024 })
            .map_rest_to(0)
            .backed_by(0, 1)
            .build(&w)
            .unwrap_err();
        assert!(matches!(
            err,
            ArchError::BadBacking {
                reason: "backing target must be an on-chip cache",
                ..
            }
        ));
    }

    #[test]
    fn self_backing_rejected() {
        let w = benchmarks::vocoder();
        let err = MemoryArchitecture::builder("selfie")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(2)))
            .map_rest_to(0)
            .backed_by(0, 0)
            .build(&w)
            .unwrap_err();
        assert!(matches!(err, ArchError::BadBacking { .. }));
    }

    #[test]
    fn dangling_backing_rejected() {
        let w = benchmarks::vocoder();
        let err = MemoryArchitecture::builder("dangle")
            .module("L1", MemModuleKind::Cache(CacheConfig::kilobytes(2)))
            .map_rest_to(0)
            .backed_by(0, 9)
            .build(&w)
            .unwrap_err();
        assert!(matches!(err, ArchError::BadBacking { .. }));
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<ArchError> = vec![
            ArchError::MissingDram,
            ArchError::MultipleDram,
            ArchError::UnmappedDataStructure(DsId::new(1)),
            ArchError::BadModuleId(ModuleId::new(2)),
            ArchError::SramOverflow {
                module: ModuleId::new(0),
                mapped: 10,
                capacity: 5,
            },
            ArchError::PatternMismatch {
                module: ModuleId::new(0),
                ds: DsId::new(0),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
