//! FIFO (write-queue) module model.
//!
//! The paper's connectivity-architecture template (Figure 2) includes a
//! FIFO between the CPU and the off-chip memory: output streams are
//! *produced* by the CPU and drained to DRAM in the background, so the CPU
//! should never stall on them. The model is a write-combining queue:
//!
//! * writes hit as long as a slot is free; full lines are drained to DRAM
//!   as background traffic at line granularity;
//! * when the queue is full the write becomes a demand transaction (the
//!   drain engine could not keep up — backpressure);
//! * reads (rare on an output stream, e.g. re-reading the last code word)
//!   hit if the data is still queued, else fetch from DRAM.

use crate::module::{ModuleModel, ModuleResponse};
use mce_appmodel::{AccessKind, Addr};

/// Queue hit latency in cycles.
pub const FIFO_HIT_CYCLES: u32 = 1;
/// CPU cycles the drain engine needs per line written back to DRAM.
pub const FIFO_DRAIN_CYCLES_PER_LINE: u64 = 10;

/// Mutable state of a FIFO write queue.
#[derive(Debug, Clone)]
pub struct FifoState {
    /// Capacity in lines.
    entries: u32,
    line_bytes: u32,
    /// Lines currently queued (newest last).
    queued: Vec<u64>,
    /// Fractional drain progress in cycles.
    drain_progress: u64,
    last_tick: Option<u64>,
}

impl FifoState {
    /// Creates an empty FIFO of `entries` lines of `line_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `line_bytes` is zero.
    pub fn new(entries: u32, line_bytes: u32) -> Self {
        assert!(entries > 0, "FIFO needs at least one entry");
        assert!(line_bytes > 0, "line size must be non-zero");
        FifoState {
            entries,
            line_bytes,
            queued: Vec::new(),
            drain_progress: 0,
            last_tick: None,
        }
    }

    /// Lines currently occupying the queue.
    pub fn occupancy(&self) -> usize {
        self.queued.len()
    }

    /// Runs the drain engine for `cycles`; returns bytes drained to DRAM.
    fn drain(&mut self, cycles: u64) -> u64 {
        self.drain_progress += cycles;
        let mut drained = 0;
        while self.drain_progress >= FIFO_DRAIN_CYCLES_PER_LINE && !self.queued.is_empty() {
            self.drain_progress -= FIFO_DRAIN_CYCLES_PER_LINE;
            self.queued.remove(0);
            drained += self.line_bytes as u64;
        }
        if self.queued.is_empty() {
            self.drain_progress = 0;
        }
        drained
    }
}

impl ModuleModel for FifoState {
    fn access(&mut self, addr: Addr, kind: AccessKind, tick: u64) -> ModuleResponse {
        let elapsed = match self.last_tick {
            Some(prev) => tick.saturating_sub(prev),
            None => 0,
        };
        self.last_tick = Some(tick);
        let background = self.drain(elapsed);
        let line = addr.block(self.line_bytes as u64);

        if kind.is_write() {
            if self.queued.last() == Some(&line) {
                // Write-combining into the open line.
                return ModuleResponse::hit(FIFO_HIT_CYCLES).with_background(background);
            }
            if (self.queued.len() as u32) < self.entries {
                self.queued.push(line);
                ModuleResponse::hit(FIFO_HIT_CYCLES).with_background(background)
            } else {
                // Queue full: the line goes straight to DRAM and the CPU
                // waits for the transaction (backpressure).
                ModuleResponse::miss(FIFO_HIT_CYCLES, self.line_bytes as u64)
                    .with_background(background)
            }
        } else if self.queued.contains(&line) {
            // Read of still-queued data (store-to-load forwarding).
            ModuleResponse::hit(FIFO_HIT_CYCLES).with_background(background)
        } else {
            ModuleResponse::miss(FIFO_HIT_CYCLES, self.line_bytes as u64)
                .with_background(background)
        }
    }

    fn reset(&mut self) {
        self.queued.clear();
        self.drain_progress = 0;
        self.last_tick = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_hit_while_queue_has_room() {
        let mut f = FifoState::new(4, 32);
        for i in 0..4u64 {
            let r = f.access(Addr::new(i * 32), AccessKind::Write, i * 50);
            assert!(r.hit, "write {i} should hit");
        }
    }

    #[test]
    fn write_combining_same_line() {
        let mut f = FifoState::new(2, 32);
        assert!(f.access(Addr::new(0), AccessKind::Write, 0).hit);
        assert!(f.access(Addr::new(4), AccessKind::Write, 1).hit);
        assert!(f.access(Addr::new(8), AccessKind::Write, 2).hit);
        assert_eq!(f.occupancy(), 1, "same line must combine");
    }

    #[test]
    fn full_queue_backpressures() {
        let mut f = FifoState::new(2, 32);
        // Fill the queue with back-to-back distinct lines, no drain time.
        f.access(Addr::new(0), AccessKind::Write, 0);
        f.access(Addr::new(32), AccessKind::Write, 0);
        let r = f.access(Addr::new(64), AccessKind::Write, 0);
        assert!(!r.hit, "full FIFO must stall");
        assert_eq!(r.demand_fill_bytes, 32);
    }

    #[test]
    fn drain_frees_slots_and_moves_bytes() {
        let mut f = FifoState::new(2, 32);
        f.access(Addr::new(0), AccessKind::Write, 0);
        f.access(Addr::new(32), AccessKind::Write, 1);
        // 25 cycles later the engine drained 2 lines (10 cycles each).
        let r = f.access(Addr::new(64), AccessKind::Write, 26);
        assert!(r.hit);
        assert_eq!(r.background_bytes, 64, "two lines drained");
    }

    #[test]
    fn read_forwards_from_queue() {
        let mut f = FifoState::new(4, 32);
        f.access(Addr::new(0), AccessKind::Write, 0);
        let r = f.access(Addr::new(16), AccessKind::Read, 1);
        assert!(r.hit, "queued line must forward");
    }

    #[test]
    fn read_of_drained_data_misses() {
        let mut f = FifoState::new(4, 32);
        f.access(Addr::new(0), AccessKind::Write, 0);
        // Long idle: line drained.
        let r = f.access(Addr::new(0), AccessKind::Read, 1000);
        assert!(!r.hit);
        assert_eq!(r.demand_fill_bytes, 32);
    }

    #[test]
    fn steady_paced_stream_never_stalls() {
        // One line every 40 cycles: drain (10 cyc/line) keeps up easily.
        let mut f = FifoState::new(4, 32);
        let mut stalls = 0;
        for i in 0..100u64 {
            if !f.access(Addr::new(i * 32), AccessKind::Write, i * 40).hit {
                stalls += 1;
            }
        }
        assert_eq!(stalls, 0);
    }

    #[test]
    fn reset_empties_queue() {
        let mut f = FifoState::new(4, 32);
        f.access(Addr::new(0), AccessKind::Write, 0);
        f.reset();
        assert_eq!(f.occupancy(), 0);
        assert!(!f.access(Addr::new(0), AccessKind::Read, 1).hit);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = FifoState::new(0, 32);
    }
}
