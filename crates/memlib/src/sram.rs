//! On-chip SRAM scratchpad model.
//!
//! A scratchpad holds the data structures mapped onto it in their entirety
//! (the [`MemoryArchitecture`](crate::MemoryArchitecture) validator enforces
//! that the mapped footprints fit), so every access is a fixed-latency
//! on-chip hit with no off-chip traffic — exactly how the paper's APEX stage
//! uses SRAMs "to store data which is accessed often".

use crate::module::{ModuleModel, ModuleResponse};
use mce_appmodel::{AccessKind, Addr};

/// Access latency of the scratchpad in cycles.
pub const SRAM_ACCESS_CYCLES: u32 = 1;

/// Mutable state of an SRAM scratchpad (stateless in practice; counts
/// accesses for reporting).
#[derive(Debug, Clone, Default)]
pub struct SramState {
    accesses: u64,
}

impl SramState {
    /// Creates the scratchpad model.
    pub fn new() -> Self {
        SramState::default()
    }

    /// Accesses served so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

impl ModuleModel for SramState {
    fn access(&mut self, _addr: Addr, _kind: AccessKind, _tick: u64) -> ModuleResponse {
        self.accesses += 1;
        ModuleResponse::hit(SRAM_ACCESS_CYCLES)
    }

    fn reset(&mut self) {
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_hits() {
        let mut s = SramState::new();
        for i in 0..100 {
            let r = s.access(Addr::new(i * 8), AccessKind::Read, i);
            assert!(r.hit);
            assert_eq!(r.service_cycles, SRAM_ACCESS_CYCLES);
            assert_eq!(r.demand_fill_bytes, 0);
            assert_eq!(r.background_bytes, 0);
        }
        assert_eq!(s.accesses(), 100);
    }

    #[test]
    fn reset_clears_counter() {
        let mut s = SramState::new();
        s.access(Addr::new(0), AccessKind::Write, 0);
        s.reset();
        assert_eq!(s.accesses(), 0);
    }
}
