//! Set-associative cache model.

use crate::module::{ModuleModel, ModuleResponse};
use mce_appmodel::{AccessKind, Addr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Replacement policy for a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least recently used line.
    #[default]
    Lru,
    /// Evict lines in fill order.
    Fifo,
}

/// Write handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Dirty lines are written back on eviction; write hits stay on-chip.
    #[default]
    WriteBack,
    /// Every write is propagated off-chip immediately (as background
    /// traffic through a write buffer).
    WriteThrough,
}

/// Write-miss handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WriteMissPolicy {
    /// Fetch the line and install it (pairs naturally with write-back).
    #[default]
    WriteAllocate,
    /// Send the write past the cache without installing the line (pairs
    /// naturally with write-through; read misses still allocate).
    WriteAround,
}

/// Static configuration of a set-associative cache.
///
/// ```
/// use mce_memlib::CacheConfig;
/// let c = CacheConfig::kilobytes(8);
/// assert_eq!(c.size_bytes, 8192);
/// assert_eq!(c.num_sets(), 8192 / (32 * 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total data capacity in bytes.
    pub size_bytes: u64,
    /// Line (block) size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Write policy.
    pub write: WritePolicy,
    /// Write-miss policy.
    pub write_miss: WriteMissPolicy,
    /// Hit latency in cycles.
    pub hit_cycles: u32,
}

impl CacheConfig {
    /// A conventional embedded cache: 32-byte lines, 2-way LRU write-back,
    /// 1-cycle hits, of `kib` KiB capacity.
    ///
    /// # Panics
    ///
    /// Panics if `kib` is zero.
    pub fn kilobytes(kib: u64) -> Self {
        assert!(kib > 0, "cache size must be non-zero");
        CacheConfig {
            size_bytes: kib * 1024,
            line_bytes: 32,
            ways: 2,
            replacement: ReplacementPolicy::Lru,
            write: WritePolicy::WriteBack,
            write_miss: WriteMissPolicy::WriteAllocate,
            hit_cycles: 1,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (capacity smaller than one
    /// full set).
    pub fn num_sets(&self) -> u64 {
        let set_bytes = self.line_bytes as u64 * self.ways as u64;
        assert!(
            self.size_bytes >= set_bytes && self.size_bytes.is_multiple_of(set_bytes),
            "cache capacity must be a multiple of line_bytes*ways"
        );
        self.size_bytes / set_bytes
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache {}K {}-way {}B lines",
            self.size_bytes / 1024,
            self.ways,
            self.line_bytes
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp or FIFO fill order, depending on policy.
    stamp: u64,
}

const INVALID_LINE: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    stamp: 0,
};

/// Mutable simulation state of a [`CacheConfig`].
#[derive(Debug, Clone)]
pub struct CacheState {
    config: CacheConfig,
    /// `sets × ways` lines, row-major.
    lines: Vec<Line>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CacheState {
    /// Creates a cold cache.
    pub fn new(config: CacheConfig) -> Self {
        let n = (config.num_sets() * config.ways as u64) as usize;
        CacheState {
            config,
            lines: vec![INVALID_LINE; n],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over all accesses so far (0.0 if none).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    fn set_range(&self, addr: Addr) -> (usize, u64) {
        let block = addr.block(self.config.line_bytes as u64);
        let sets = self.config.num_sets();
        let set = (block % sets) as usize;
        let tag = block / sets;
        (set * self.config.ways as usize, tag)
    }
}

impl ModuleModel for CacheState {
    fn access(&mut self, addr: Addr, kind: AccessKind, _tick: u64) -> ModuleResponse {
        self.clock += 1;
        let ways = self.config.ways as usize;
        let (base, tag) = self.set_range(addr);
        let set = &mut self.lines[base..base + ways];

        // Hit path.
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            if self.config.replacement == ReplacementPolicy::Lru {
                line.stamp = self.clock;
            }
            let mut wt_bytes = 0;
            if kind.is_write() {
                match self.config.write {
                    WritePolicy::WriteBack => line.dirty = true,
                    WritePolicy::WriteThrough => wt_bytes = self.config.line_bytes as u64 / 4,
                }
            }
            self.hits += 1;
            return ModuleResponse::hit(self.config.hit_cycles).with_background(wt_bytes);
        }

        // Miss path.
        self.misses += 1;
        if kind.is_write() && self.config.write_miss == WriteMissPolicy::WriteAround {
            // The write bypasses the cache: a posted store goes off-chip
            // without allocating a line or stalling the CPU, so for
            // latency purposes it behaves like a hit with background
            // traffic.
            return ModuleResponse::hit(self.config.hit_cycles)
                .with_background(self.config.line_bytes as u64 / 4);
        }
        // Choose a victim (invalid first, else lowest stamp).
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.valid, l.stamp))
            .map(|(i, _)| i)
            .expect("cache set is never empty");
        let evicted = set[victim];
        let mut background = 0;
        if evicted.valid && evicted.dirty {
            background += self.config.line_bytes as u64;
        }
        set[victim] = Line {
            tag,
            valid: true,
            dirty: kind.is_write() && self.config.write == WritePolicy::WriteBack,
            stamp: self.clock,
        };
        if kind.is_write() && self.config.write == WritePolicy::WriteThrough {
            background += self.config.line_bytes as u64 / 4;
        }
        ModuleResponse::miss(self.config.hit_cycles, self.config.line_bytes as u64)
            .with_background(background)
    }

    fn reset(&mut self) {
        self.lines.fill(INVALID_LINE);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_mapped(kib: u64) -> CacheConfig {
        CacheConfig {
            ways: 1,
            ..CacheConfig::kilobytes(kib)
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = CacheState::new(CacheConfig::kilobytes(4));
        let a = Addr::new(0x1000);
        let first = c.access(a, AccessKind::Read, 0);
        assert!(!first.hit);
        assert_eq!(first.demand_fill_bytes, 32);
        let second = c.access(a, AccessKind::Read, 1);
        assert!(second.hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn same_line_different_word_hits() {
        let mut c = CacheState::new(CacheConfig::kilobytes(4));
        c.access(Addr::new(0x100), AccessKind::Read, 0);
        let r = c.access(Addr::new(0x11c), AccessKind::Read, 1);
        assert!(r.hit, "0x11c shares the 32B line of 0x100");
    }

    #[test]
    fn conflict_eviction_direct_mapped() {
        let cfg = direct_mapped(1); // 1 KiB, 32 sets
        let mut c = CacheState::new(cfg);
        let a = Addr::new(0);
        let b = Addr::new(1024); // same set, different tag
        c.access(a, AccessKind::Read, 0);
        c.access(b, AccessKind::Read, 1);
        let r = c.access(a, AccessKind::Read, 2);
        assert!(!r.hit, "a must have been evicted by b");
    }

    #[test]
    fn two_way_avoids_simple_conflict() {
        let mut c = CacheState::new(CacheConfig::kilobytes(1));
        let a = Addr::new(0);
        let b = Addr::new(1024);
        c.access(a, AccessKind::Read, 0);
        c.access(b, AccessKind::Read, 1);
        assert!(c.access(a, AccessKind::Read, 2).hit);
        assert!(c.access(b, AccessKind::Read, 3).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way: touch a, b, re-touch a, then c -> b is the LRU victim.
        let mut c = CacheState::new(CacheConfig::kilobytes(1));
        let (a, b, d) = (Addr::new(0), Addr::new(1024), Addr::new(2048));
        c.access(a, AccessKind::Read, 0);
        c.access(b, AccessKind::Read, 1);
        c.access(a, AccessKind::Read, 2);
        c.access(d, AccessKind::Read, 3); // evicts b
        assert!(c.access(a, AccessKind::Read, 4).hit);
        assert!(!c.access(b, AccessKind::Read, 5).hit);
    }

    #[test]
    fn fifo_evicts_fill_order() {
        let cfg = CacheConfig {
            replacement: ReplacementPolicy::Fifo,
            ..CacheConfig::kilobytes(1)
        };
        let mut c = CacheState::new(cfg);
        let (a, b, d) = (Addr::new(0), Addr::new(1024), Addr::new(2048));
        c.access(a, AccessKind::Read, 0);
        c.access(b, AccessKind::Read, 1);
        c.access(a, AccessKind::Read, 2); // does not refresh FIFO order
        c.access(d, AccessKind::Read, 3); // evicts a (oldest fill)
        assert!(!c.access(a, AccessKind::Read, 4).hit);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let cfg = direct_mapped(1);
        let mut c = CacheState::new(cfg);
        c.access(Addr::new(0), AccessKind::Write, 0);
        let r = c.access(Addr::new(1024), AccessKind::Read, 1);
        assert_eq!(r.background_bytes, 32, "dirty line must be written back");
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let cfg = direct_mapped(1);
        let mut c = CacheState::new(cfg);
        c.access(Addr::new(0), AccessKind::Read, 0);
        let r = c.access(Addr::new(1024), AccessKind::Read, 1);
        assert_eq!(r.background_bytes, 0);
    }

    #[test]
    fn write_through_generates_traffic_on_hits() {
        let cfg = CacheConfig {
            write: WritePolicy::WriteThrough,
            ..CacheConfig::kilobytes(4)
        };
        let mut c = CacheState::new(cfg);
        c.access(Addr::new(0), AccessKind::Read, 0);
        let r = c.access(Addr::new(0), AccessKind::Write, 1);
        assert!(r.hit);
        assert!(r.background_bytes > 0);
    }

    #[test]
    fn write_around_does_not_allocate() {
        let cfg = CacheConfig {
            write: WritePolicy::WriteThrough,
            write_miss: WriteMissPolicy::WriteAround,
            ..CacheConfig::kilobytes(4)
        };
        let mut c = CacheState::new(cfg);
        let r = c.access(Addr::new(0x200), AccessKind::Write, 0);
        assert!(r.hit, "posted store must not stall");
        assert_eq!(r.demand_fill_bytes, 0, "no line fetch");
        assert!(r.background_bytes > 0, "the store still goes off-chip");
        // The line was not installed: a subsequent read misses.
        assert!(!c.access(Addr::new(0x200), AccessKind::Read, 1).hit);
    }

    #[test]
    fn write_allocate_installs_line() {
        let mut c = CacheState::new(CacheConfig::kilobytes(4)); // default: allocate
        let r = c.access(Addr::new(0x200), AccessKind::Write, 0);
        assert!(!r.hit);
        assert_eq!(r.demand_fill_bytes, 32, "line fetched on write miss");
        assert!(c.access(Addr::new(0x200), AccessKind::Read, 1).hit);
    }

    #[test]
    fn write_around_read_misses_still_allocate() {
        let cfg = CacheConfig {
            write_miss: WriteMissPolicy::WriteAround,
            ..CacheConfig::kilobytes(4)
        };
        let mut c = CacheState::new(cfg);
        assert!(!c.access(Addr::new(0x40), AccessKind::Read, 0).hit);
        assert!(c.access(Addr::new(0x40), AccessKind::Read, 1).hit);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut c = CacheState::new(CacheConfig::kilobytes(4));
        c.access(Addr::new(0), AccessKind::Read, 0);
        c.access(Addr::new(0), AccessKind::Read, 1);
        c.reset();
        assert_eq!(c.hits(), 0);
        assert!(!c.access(Addr::new(0), AccessKind::Read, 2).hit);
    }

    #[test]
    fn miss_ratio_counts() {
        let mut c = CacheState::new(CacheConfig::kilobytes(4));
        c.access(Addr::new(0), AccessKind::Read, 0);
        c.access(Addr::new(0), AccessKind::Read, 1);
        c.access(Addr::new(0), AccessKind::Read, 2);
        c.access(Addr::new(4096), AccessKind::Read, 3);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn degenerate_geometry_rejected() {
        let cfg = CacheConfig {
            size_bytes: 48, // not a multiple of 32*2
            ..CacheConfig::kilobytes(1)
        };
        let _ = cfg.num_sets();
    }

    #[test]
    fn larger_cache_has_lower_miss_ratio_on_looping_traffic() {
        // Sweep a 2 KiB region repeatedly: a 4 KiB cache holds it, a 1 KiB
        // direct-mapped cache thrashes.
        let mut big = CacheState::new(CacheConfig::kilobytes(4));
        let mut small = CacheState::new(direct_mapped(1));
        for rep in 0..8 {
            for off in (0..2048).step_by(32) {
                let a = Addr::new(off);
                big.access(a, AccessKind::Read, rep);
                small.access(a, AccessKind::Read, rep);
            }
        }
        assert!(big.miss_ratio() < small.miss_ratio());
    }
}
