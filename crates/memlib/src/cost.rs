//! Gate-count cost model for memory modules.
//!
//! The paper reports cost "in basic gates", using the area models of
//! Catthoor et al. for memories. We use synthetic linear models with
//! constants chosen so that whole-system costs land in the paper's reported
//! ranges (≈150 k gates for the smallest vocoder system up to ≈900 k for the
//! richest compress system). Only *relative* cost ordering influences the
//! exploration, so the constants are documented here once and used
//! everywhere.

use crate::cache::CacheConfig;
use crate::module::MemModuleKind;

/// Gates per bit of SRAM storage (6T cell + column overhead).
pub const GATES_PER_SRAM_BIT: u64 = 4;
/// Gates per bit of cache data/tag storage (adds comparators/valid bits).
pub const GATES_PER_CACHE_BIT: u64 = 5;
/// Fixed control overhead of a cache (state machine, fill buffer).
pub const CACHE_CONTROL_GATES: u64 = 5_000;
/// Additional control per way (comparator, mux legs).
pub const CACHE_WAY_GATES: u64 = 2_000;
/// Fixed control overhead of a stream buffer (stride detector, tags).
pub const STREAM_BUFFER_CONTROL_GATES: u64 = 8_000;
/// Fixed control overhead of a self-indirect DMA (walk engine, address ALU).
pub const DMA_CONTROL_GATES: u64 = 18_000;
/// Fixed control overhead of a FIFO write queue (pointers, drain engine).
pub const FIFO_CONTROL_GATES: u64 = 6_000;
/// On-chip DRAM controller (the DRAM array itself is off-chip and free).
pub const DRAM_CONTROLLER_GATES: u64 = 15_000;
/// Base system cost: CPU bus-interface unit, pads, clocking. Added once per
/// architecture, not per module.
pub const SYSTEM_BASE_GATES: u64 = 120_000;

/// Physical address bits assumed for tag sizing.
const ADDR_BITS: u64 = 32;

/// Gate cost of one cache instance.
pub fn cache_gates(config: &CacheConfig) -> u64 {
    let data_bits = config.size_bytes * 8;
    let sets = config.num_sets();
    let offset_bits = (config.line_bytes as u64).trailing_zeros() as u64;
    let index_bits = sets.trailing_zeros() as u64;
    let tag_bits = ADDR_BITS.saturating_sub(offset_bits + index_bits);
    let tag_storage_bits = sets * config.ways as u64 * (tag_bits + 2); // +valid +dirty
    data_bits * GATES_PER_CACHE_BIT
        + tag_storage_bits * GATES_PER_CACHE_BIT
        + CACHE_CONTROL_GATES
        + config.ways as u64 * CACHE_WAY_GATES
}

/// Gate cost of one module instance.
pub fn module_gates(kind: MemModuleKind) -> u64 {
    match kind {
        MemModuleKind::Cache(cfg) => cache_gates(&cfg),
        MemModuleKind::Sram { bytes } => bytes * 8 * GATES_PER_SRAM_BIT,
        MemModuleKind::StreamBuffer {
            entries,
            line_bytes,
        } => {
            entries as u64 * line_bytes as u64 * 8 * GATES_PER_SRAM_BIT
                + STREAM_BUFFER_CONTROL_GATES
        }
        MemModuleKind::SelfIndirectDma {
            depth,
            element_bytes,
        } => depth as u64 * element_bytes as u64 * 8 * GATES_PER_SRAM_BIT + DMA_CONTROL_GATES,
        MemModuleKind::Fifo {
            entries,
            line_bytes,
        } => entries as u64 * line_bytes as u64 * 8 * GATES_PER_SRAM_BIT + FIFO_CONTROL_GATES,
        MemModuleKind::OffChipDram(_) => DRAM_CONTROLLER_GATES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramConfig;

    #[test]
    fn cache_cost_scales_with_size() {
        let small = cache_gates(&CacheConfig::kilobytes(1));
        let big = cache_gates(&CacheConfig::kilobytes(8));
        assert!(big > 4 * small, "8K cache should cost much more than 1K");
    }

    #[test]
    fn cache_cost_in_paper_ballpark() {
        // An 8 KiB cache plus the base system should land in the paper's
        // cheapest-compress-architecture range (~480 k gates).
        let total = cache_gates(&CacheConfig::kilobytes(8)) + SYSTEM_BASE_GATES;
        assert!((350_000..650_000).contains(&total), "total {total}");
    }

    #[test]
    fn sram_cheaper_than_cache_same_capacity() {
        let sram = module_gates(MemModuleKind::Sram { bytes: 4096 });
        let cache = module_gates(MemModuleKind::Cache(CacheConfig::kilobytes(4)));
        assert!(sram < cache, "scratchpad has no tags/comparators");
    }

    #[test]
    fn dma_dominated_by_control_at_small_depth() {
        let g = module_gates(MemModuleKind::SelfIndirectDma {
            depth: 4,
            element_bytes: 8,
        });
        assert!(g >= DMA_CONTROL_GATES);
        assert!(g < DMA_CONTROL_GATES + 10_000);
    }

    #[test]
    fn dram_counts_controller_only() {
        assert_eq!(
            module_gates(MemModuleKind::OffChipDram(DramConfig::typical())),
            DRAM_CONTROLLER_GATES
        );
    }

    #[test]
    fn associativity_costs_gates() {
        let two_way = cache_gates(&CacheConfig::kilobytes(4));
        let four_way = cache_gates(&CacheConfig {
            ways: 4,
            ..CacheConfig::kilobytes(4)
        });
        assert!(four_way > two_way);
    }
}
