//! Stream-buffer model.
//!
//! A stream buffer locks onto a constant-stride access stream and prefetches
//! `entries` lines ahead. Once locked, accesses that continue the stream hit
//! in the buffer (the prefetcher stays ahead of the CPU); the prefetch
//! traffic itself still moves over the off-chip channel as background bytes,
//! so it costs energy and bandwidth but not CPU stall time. A break in the
//! stride (or the initial cold access) is a demand miss and restarts the
//! stride-detection state machine.

use crate::module::{ModuleModel, ModuleResponse};
use mce_appmodel::{AccessKind, Addr};

/// Buffer hit latency in cycles.
pub const STREAM_HIT_CYCLES: u32 = 1;
/// Consecutive constant-stride accesses required to lock the prefetcher.
const LOCK_THRESHOLD: u32 = 2;

/// Mutable state of a stream buffer.
#[derive(Debug, Clone)]
pub struct StreamBufferState {
    entries: u32,
    line_bytes: u32,
    last_addr: Option<u64>,
    stride: i64,
    streak: u32,
    /// Blocks already prefetched ahead of the current position.
    prefetched_ahead: u32,
}

impl StreamBufferState {
    /// Creates a cold stream buffer with `entries` slots of `line_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `line_bytes` is zero.
    pub fn new(entries: u32, line_bytes: u32) -> Self {
        assert!(entries > 0, "stream buffer needs at least one entry");
        assert!(line_bytes > 0, "line size must be non-zero");
        StreamBufferState {
            entries,
            line_bytes,
            last_addr: None,
            stride: 0,
            streak: 0,
            prefetched_ahead: 0,
        }
    }

    /// True once the stride detector has locked and prefetch is active.
    pub fn is_locked(&self) -> bool {
        self.streak >= LOCK_THRESHOLD
    }
}

impl ModuleModel for StreamBufferState {
    fn access(&mut self, addr: Addr, _kind: AccessKind, _tick: u64) -> ModuleResponse {
        let raw = addr.raw();
        let line = self.line_bytes as u64;
        let response = match self.last_addr {
            Some(prev) => {
                let delta = raw as i64 - prev as i64;
                if delta == self.stride && delta.unsigned_abs() <= line {
                    self.streak = self.streak.saturating_add(1);
                } else {
                    self.stride = delta;
                    self.streak = 1;
                    self.prefetched_ahead = 0;
                }
                if self.is_locked() {
                    // Locked: same-line accesses and next-line accesses with
                    // prefetch credit hit; refill one line in background when
                    // we cross into a new line.
                    let crossed = raw / line != prev / line;
                    if crossed {
                        if self.prefetched_ahead > 0 {
                            self.prefetched_ahead -= 1;
                            ModuleResponse::hit(STREAM_HIT_CYCLES).with_background(line)
                        } else {
                            // Prefetcher not warm yet for this line.
                            self.prefetched_ahead = self.entries - 1;
                            ModuleResponse::miss(STREAM_HIT_CYCLES, line)
                                .with_background(line * (self.entries as u64 - 1))
                        }
                    } else {
                        ModuleResponse::hit(STREAM_HIT_CYCLES)
                    }
                } else {
                    // Still detecting: the access goes to DRAM.
                    ModuleResponse::miss(STREAM_HIT_CYCLES, line)
                }
            }
            None => {
                self.streak = 0;
                ModuleResponse::miss(STREAM_HIT_CYCLES, line)
            }
        };
        self.last_addr = Some(raw);
        response
    }

    fn reset(&mut self) {
        self.last_addr = None;
        self.stride = 0;
        self.streak = 0;
        self.prefetched_ahead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(buf: &mut StreamBufferState, addrs: &[u64]) -> Vec<bool> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| buf.access(Addr::new(a), AccessKind::Read, i as u64).hit)
            .collect()
    }

    #[test]
    fn steady_stream_hits_after_warmup() {
        let mut b = StreamBufferState::new(4, 32);
        let addrs: Vec<u64> = (0..200).map(|i| i * 4).collect();
        let hits = run(&mut b, &addrs);
        let warm_hits = hits[16..].iter().filter(|&&h| h).count();
        assert!(
            warm_hits as f64 > 0.95 * (hits.len() - 16) as f64,
            "warm hit count {warm_hits}"
        );
    }

    #[test]
    fn cold_start_misses() {
        let mut b = StreamBufferState::new(4, 32);
        let hits = run(&mut b, &[0, 4, 8]);
        assert!(!hits[0], "first access must miss");
    }

    #[test]
    fn stride_break_resets_lock() {
        let mut b = StreamBufferState::new(4, 32);
        run(&mut b, &[0, 4, 8, 12, 16]);
        assert!(b.is_locked());
        // Jump far away: lock must drop.
        b.access(Addr::new(100_000), AccessKind::Read, 10);
        assert!(!b.is_locked());
    }

    #[test]
    fn random_traffic_mostly_misses() {
        let mut b = StreamBufferState::new(4, 32);
        // A scattered sequence with no constant stride.
        let addrs = [7_u64, 991, 13, 4096, 77, 2048, 5, 9999, 123, 777];
        let hits = run(&mut b, &addrs);
        assert!(hits.iter().filter(|&&h| h).count() <= 1);
    }

    #[test]
    fn prefetch_generates_background_traffic() {
        let mut b = StreamBufferState::new(4, 32);
        let addrs: Vec<u64> = (0..100).map(|i| i * 4).collect();
        let mut background = 0;
        for (i, &a) in addrs.iter().enumerate() {
            background += b
                .access(Addr::new(a), AccessKind::Read, i as u64)
                .background_bytes;
        }
        assert!(background > 0, "prefetching must move off-chip bytes");
    }

    #[test]
    fn reset_returns_to_cold() {
        let mut b = StreamBufferState::new(4, 32);
        run(&mut b, &[0, 4, 8, 12]);
        b.reset();
        assert!(!b.is_locked());
        assert!(!b.access(Addr::new(16), AccessKind::Read, 0).hit);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = StreamBufferState::new(0, 32);
    }
}
