//! # mce-faultinject — deterministic fault injection for crash-safety tests
//!
//! Test support for proving the exploration stack survives the faults it
//! claims to survive: worker panics, hard process deaths mid-phase, and
//! failed or corrupted file writes. Production builds never compile the
//! hooks — they sit behind the `fault-injection` cargo feature of the
//! crates that call them, which only test builds enable.
//!
//! ## Hooks
//!
//! * [`on_eval`] — called by the evaluation engine before every candidate
//!   simulation. Armed with [`Fault::PanicAtEval`] it panics at the Nth
//!   evaluation (optionally at every evaluation from the Nth on); armed
//!   with [`Fault::AbortAtEval`] it aborts the whole process — the
//!   closest in-process stand-in for a `SIGKILL` mid-run; armed with
//!   [`Fault::SigkillAtEval`] it delivers an actual `SIGKILL` to itself,
//!   the real thing for supervisor crash-detection tests.
//! * [`on_write`] — called by `mce_error::atomic_write` before touching
//!   the filesystem. Armed with [`Fault::FailWrite`] the Kth write
//!   returns an injected [`io::Error`].
//! * [`on_heartbeat`] — called by swarm workers before each heartbeat
//!   write. Armed with [`Fault::StallHeartbeat`] it suppresses every
//!   beat from the Nth on, freezing the heartbeat file while the worker
//!   keeps running — the scenario a staleness detector exists for.
//! * [`on_job`] — called by the `mce serve` job executor at each job
//!   pickup. Armed with [`Fault::DieAtJob`] it `SIGKILL`s the daemon at
//!   the Nth pickup (the journal-durability crash test); armed with
//!   [`Fault::StallJob`] it asks the executor to wedge the Nth job until
//!   its deadline cancels it (the retry-after-timeout test).
//!
//! ## Arming
//!
//! In-process tests call [`arm`]/[`disarm`] directly. Subprocess tests
//! (kill-and-resume) set the `MCE_FAULT` environment variable — a
//! comma-separated list of specs such as `panic_at_eval:40`,
//! `panic_at_eval:40+` (sticky), `abort_at_eval:40`, `fail_write:2`,
//! `sigkill_at_eval:40`, `stall_heartbeat:3`, `die_at_job:1` or
//! `stall_job:1` — and the `mce` binary arms it at startup via
//! [`arm_from_env`].
//!
//! The crate also ships the file-corruption helpers ([`flip_bit`],
//! [`truncate_file`]) the property tests use to mangle spill and
//! checkpoint files on disk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the worker closure at the `nth` candidate evaluation
    /// (1-based). `sticky` keeps panicking at every evaluation from the
    /// `nth` on, so the serial retry fails too.
    PanicAtEval {
        /// 1-based evaluation index that triggers the panic.
        nth: u64,
        /// Panic at every evaluation from `nth` on, not just once.
        sticky: bool,
    },
    /// Abort the whole process at the `nth` candidate evaluation — an
    /// unclean death no destructor or catch can intercept.
    AbortAtEval {
        /// 1-based evaluation index that triggers the abort.
        nth: u64,
    },
    /// Fail the `nth` atomic file write with an injected I/O error.
    FailWrite {
        /// 1-based write index that fails.
        nth: u64,
    },
    /// Hang the `nth` candidate evaluation: the evaluation sleeps in a
    /// loop until the caller's cancellation check trips (the watchdog
    /// reclaiming the lane, or a global cancel). Proves `--candidate-
    /// timeout` degrades a wedged evaluation instead of wedging the run.
    HangAtEval {
        /// 1-based evaluation index that hangs.
        nth: u64,
    },
    /// Deliver a real `SIGKILL` to the current process at the `nth`
    /// candidate evaluation — unlike [`Fault::AbortAtEval`] (a libc
    /// `abort`, which still raises a catchable-in-principle signal and
    /// runs no atexit), this is the genuine uncatchable kill a swarm
    /// supervisor must detect and recover from.
    SigkillAtEval {
        /// 1-based evaluation index that kills the process.
        nth: u64,
    },
    /// Stop the process's heartbeat from the `nth` beat on: every
    /// [`on_heartbeat`] call from then out reports "suppress this beat",
    /// so the heartbeat file freezes while the process keeps computing —
    /// the stale-but-alive worker a supervisor's staleness detector must
    /// reap.
    StallHeartbeat {
        /// 1-based heartbeat index from which beats are suppressed.
        nth: u64,
    },
    /// Deliver a real `SIGKILL` to the current process at the `nth` job
    /// pickup ([`on_job`]) — the daemon dies with the job journaled as
    /// `running`, and the restarted daemon must resume it from its
    /// checkpoint.
    DieAtJob {
        /// 1-based job-pickup index that kills the process.
        nth: u64,
    },
    /// Wedge the `nth` job picked up by the executor: [`on_job`] reports
    /// "stall this job" once, and the executor spins on the job's cancel
    /// token instead of exploring — until the per-job deadline trips and
    /// the retry schedule takes over. One-shot, so the retried attempt
    /// runs clean.
    StallJob {
        /// 1-based job-pickup index that stalls.
        nth: u64,
    },
}

struct State {
    enabled: AtomicBool,
    faults: Mutex<Vec<Fault>>,
    evals: AtomicU64,
    writes: AtomicU64,
    beats: AtomicU64,
    jobs: AtomicU64,
}

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(|| State {
        enabled: AtomicBool::new(false),
        faults: Mutex::new(Vec::new()),
        evals: AtomicU64::new(0),
        writes: AtomicU64::new(0),
        beats: AtomicU64::new(0),
        jobs: AtomicU64::new(0),
    })
}

/// Arms the given faults, replacing any previous arming and resetting the
/// evaluation and write counters.
pub fn arm(faults: Vec<Fault>) {
    let s = state();
    *s.faults.lock().unwrap_or_else(PoisonError::into_inner) = faults;
    s.evals.store(0, Ordering::SeqCst);
    s.writes.store(0, Ordering::SeqCst);
    s.beats.store(0, Ordering::SeqCst);
    s.jobs.store(0, Ordering::SeqCst);
    s.enabled.store(true, Ordering::SeqCst);
}

/// Disarms all faults and resets the counters. Hooks return to a single
/// relaxed atomic load.
pub fn disarm() {
    let s = state();
    s.enabled.store(false, Ordering::SeqCst);
    s.faults
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    s.evals.store(0, Ordering::SeqCst);
    s.writes.store(0, Ordering::SeqCst);
    s.beats.store(0, Ordering::SeqCst);
    s.jobs.store(0, Ordering::SeqCst);
}

/// Parses one `MCE_FAULT` spec (e.g. `panic_at_eval:40`,
/// `panic_at_eval:40+`, `abort_at_eval:7`, `fail_write:2`).
///
/// # Errors
///
/// Returns a message naming the malformed spec.
pub fn parse_spec(spec: &str) -> Result<Fault, String> {
    let (kind, arg) = spec
        .split_once(':')
        .ok_or_else(|| format!("fault spec `{spec}` is missing `:N`"))?;
    let (digits, sticky) = match arg.strip_suffix('+') {
        Some(d) => (d, true),
        None => (arg, false),
    };
    let nth: u64 = digits
        .parse()
        .map_err(|_| format!("fault spec `{spec}`: `{arg}` is not a count"))?;
    if nth == 0 {
        return Err(format!("fault spec `{spec}`: counts are 1-based"));
    }
    match kind {
        "panic_at_eval" => Ok(Fault::PanicAtEval { nth, sticky }),
        "abort_at_eval" if !sticky => Ok(Fault::AbortAtEval { nth }),
        "fail_write" if !sticky => Ok(Fault::FailWrite { nth }),
        "hang_at_eval" if !sticky => Ok(Fault::HangAtEval { nth }),
        "sigkill_at_eval" if !sticky => Ok(Fault::SigkillAtEval { nth }),
        "stall_heartbeat" if !sticky => Ok(Fault::StallHeartbeat { nth }),
        "die_at_job" if !sticky => Ok(Fault::DieAtJob { nth }),
        "stall_job" if !sticky => Ok(Fault::StallJob { nth }),
        _ => Err(format!("unknown fault spec `{spec}`")),
    }
}

/// Reads `MCE_FAULT` (a comma-separated spec list) and arms it. Unset or
/// empty leaves everything disarmed. Returns what was armed.
///
/// # Errors
///
/// Returns a message naming the first malformed spec; nothing is armed.
pub fn arm_from_env() -> Result<Vec<Fault>, String> {
    let Ok(var) = std::env::var("MCE_FAULT") else {
        return Ok(Vec::new());
    };
    let specs = var.trim();
    if specs.is_empty() {
        return Ok(Vec::new());
    }
    let faults = specs
        .split(',')
        .map(|s| parse_spec(s.trim()))
        .collect::<Result<Vec<_>, _>>()?;
    arm(faults.clone());
    Ok(faults)
}

/// The evaluation hook: counts one candidate evaluation and fires any
/// armed [`Fault::PanicAtEval`] / [`Fault::AbortAtEval`] /
/// [`Fault::HangAtEval`] whose turn it is. No-op (one relaxed load) when
/// disarmed.
///
/// An armed hang blocks **forever** through this entry point — the
/// un-reclaimable wedge a caller without cooperative cancellation gets.
/// Callers that can be reclaimed use [`on_eval_blocking`] instead.
pub fn on_eval() {
    on_eval_blocking(&|| false);
}

/// [`on_eval`] with a cooperative escape hatch for [`Fault::HangAtEval`]:
/// an injected hang sleeps in a loop until `cancelled` returns `true`
/// (all other faults behave exactly as in [`on_eval`]). Returns whether
/// a hang fired — the evaluation was reclaimed and should be treated as
/// timed out.
pub fn on_eval_blocking(cancelled: &(dyn Fn() -> bool + Sync)) -> bool {
    let s = state();
    if !s.enabled.load(Ordering::Relaxed) {
        return false;
    }
    let n = s.evals.fetch_add(1, Ordering::SeqCst) + 1;
    let faults = s
        .faults
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut hung = false;
    for fault in faults {
        match fault {
            Fault::PanicAtEval { nth, sticky } if n == nth || (sticky && n > nth) => {
                panic!("injected panic at evaluation {n}");
            }
            Fault::AbortAtEval { nth } if n == nth => {
                eprintln!("mce-faultinject: aborting process at evaluation {n}");
                std::process::abort();
            }
            Fault::HangAtEval { nth } if n == nth => {
                eprintln!("mce-faultinject: hanging evaluation {n}");
                while !cancelled() {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                hung = true;
            }
            Fault::SigkillAtEval { nth } if n == nth => {
                eprintln!("mce-faultinject: SIGKILL to self at evaluation {n}");
                // No libc in the tree: ask the platform `kill` for the
                // one signal nothing can catch, then wait for it to land.
                let _ = std::process::Command::new("kill")
                    .args(["-9", &std::process::id().to_string()])
                    .status();
                loop {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
            _ => {}
        }
    }
    hung
}

/// The heartbeat hook: counts one heartbeat and reports whether an armed
/// [`Fault::StallHeartbeat`] wants it (and every later one) suppressed —
/// `true` means "do not write this beat". No-op (one relaxed load,
/// always `false`) when disarmed.
pub fn on_heartbeat() -> bool {
    let s = state();
    if !s.enabled.load(Ordering::Relaxed) {
        return false;
    }
    let n = s.beats.fetch_add(1, Ordering::SeqCst) + 1;
    let faults = s
        .faults
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    faults.iter().any(|fault| {
        if let Fault::StallHeartbeat { nth } = fault {
            if n == *nth {
                eprintln!("mce-faultinject: stalling heartbeat from beat {n}");
            }
            n >= *nth
        } else {
            false
        }
    })
}

/// The job hook: counts one job pickup and fires any armed
/// [`Fault::DieAtJob`] (a real `SIGKILL` to the current process) or
/// [`Fault::StallJob`] whose turn it is. Returns `true` when the picked
/// job should stall — the executor then spins on the job's cancel token
/// instead of running the exploration. No-op (one relaxed load, always
/// `false`) when disarmed.
pub fn on_job() -> bool {
    let s = state();
    if !s.enabled.load(Ordering::Relaxed) {
        return false;
    }
    let n = s.jobs.fetch_add(1, Ordering::SeqCst) + 1;
    let faults = s
        .faults
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut stall = false;
    for fault in faults {
        match fault {
            Fault::DieAtJob { nth } if n == nth => {
                eprintln!("mce-faultinject: SIGKILL to self at job pickup {n}");
                let _ = std::process::Command::new("kill")
                    .args(["-9", &std::process::id().to_string()])
                    .status();
                loop {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
            Fault::StallJob { nth } if n == nth => {
                eprintln!("mce-faultinject: stalling job pickup {n}");
                stall = true;
            }
            _ => {}
        }
    }
    stall
}

/// The write hook: counts one atomic file write and fails it when an
/// armed [`Fault::FailWrite`] says so. No-op when disarmed.
///
/// # Errors
///
/// Returns the injected error on the armed write index.
pub fn on_write(path: &Path) -> io::Result<()> {
    let s = state();
    if !s.enabled.load(Ordering::Relaxed) {
        return Ok(());
    }
    let n = s.writes.fetch_add(1, Ordering::SeqCst) + 1;
    let faults = s
        .faults
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    for fault in faults {
        if let Fault::FailWrite { nth } = fault {
            if n == nth {
                return Err(io::Error::other(format!(
                    "injected failure of write {n} (`{}`)",
                    path.display()
                )));
            }
        }
    }
    Ok(())
}

/// Flips one bit of the file at `path` (byte `byte_index`, bit `bit`,
/// both wrapped into range), simulating on-disk corruption.
///
/// # Errors
///
/// Returns the underlying I/O error; an empty file is an error too.
pub fn flip_bit(path: &Path, byte_index: usize, bit: u8) -> io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cannot flip a bit of an empty file",
        ));
    }
    let i = byte_index % bytes.len();
    bytes[i] ^= 1 << (bit % 8);
    std::fs::write(path, bytes)
}

/// Truncates the file at `path` to its first `keep` bytes (no-op when it
/// is already shorter), simulating a write cut short by a crash.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn truncate_file(path: &Path, keep: usize) -> io::Result<()> {
    let bytes = std::fs::read(path)?;
    let keep = keep.min(bytes.len());
    std::fs::write(path, &bytes[..keep])
}

#[cfg(test)]
mod tests {
    use super::*;

    // The armed state is process-global; tests that arm serialize here.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn specs_parse_and_reject() {
        assert_eq!(
            parse_spec("panic_at_eval:40"),
            Ok(Fault::PanicAtEval {
                nth: 40,
                sticky: false
            })
        );
        assert_eq!(
            parse_spec("panic_at_eval:40+"),
            Ok(Fault::PanicAtEval {
                nth: 40,
                sticky: true
            })
        );
        assert_eq!(
            parse_spec("abort_at_eval:7"),
            Ok(Fault::AbortAtEval { nth: 7 })
        );
        assert_eq!(parse_spec("fail_write:2"), Ok(Fault::FailWrite { nth: 2 }));
        assert_eq!(
            parse_spec("hang_at_eval:5"),
            Ok(Fault::HangAtEval { nth: 5 })
        );
        assert_eq!(
            parse_spec("sigkill_at_eval:9"),
            Ok(Fault::SigkillAtEval { nth: 9 })
        );
        assert_eq!(
            parse_spec("stall_heartbeat:3"),
            Ok(Fault::StallHeartbeat { nth: 3 })
        );
        assert_eq!(parse_spec("die_at_job:1"), Ok(Fault::DieAtJob { nth: 1 }));
        assert_eq!(parse_spec("stall_job:2"), Ok(Fault::StallJob { nth: 2 }));
        for bad in [
            "panic_at_eval",
            "panic_at_eval:x",
            "frobnicate:1",
            "fail_write:0",
            "abort_at_eval:1+",
            "hang_at_eval:3+",
            "sigkill_at_eval:2+",
            "stall_heartbeat:0",
            "die_at_job:1+",
            "stall_job:0",
        ] {
            assert!(parse_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn stalled_job_fires_at_the_nth_pickup_only() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        arm(vec![Fault::StallJob { nth: 2 }]);
        assert!(!on_job(), "first pickup runs");
        assert!(on_job(), "second pickup stalls");
        assert!(!on_job(), "one-shot: the retry runs clean");
        disarm();
        assert!(!on_job(), "disarmed: jobs always run");
    }

    #[test]
    fn stalled_heartbeat_suppresses_from_the_nth_beat_on() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        arm(vec![Fault::StallHeartbeat { nth: 3 }]);
        assert!(!on_heartbeat());
        assert!(!on_heartbeat());
        assert!(on_heartbeat(), "third beat is suppressed");
        assert!(on_heartbeat(), "and the stall is sticky by nature");
        disarm();
        assert!(!on_heartbeat(), "disarmed: beats flow again");
    }

    #[test]
    fn hang_blocks_until_the_check_trips() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        arm(vec![Fault::HangAtEval { nth: 2 }]);
        assert!(!on_eval_blocking(&|| false), "first evaluation is clean");
        // The second hangs; a check that trips after a few polls reclaims it.
        let polls = AtomicU64::new(0);
        let reclaimed = on_eval_blocking(&|| polls.fetch_add(1, Ordering::SeqCst) >= 3);
        assert!(reclaimed, "hang reports the reclaim");
        assert!(polls.load(Ordering::SeqCst) >= 3);
        assert!(!on_eval_blocking(&|| false), "one-shot: the third is clean");
        disarm();
    }

    #[test]
    fn panic_fires_at_the_nth_eval_only() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        arm(vec![Fault::PanicAtEval {
            nth: 3,
            sticky: false,
        }]);
        on_eval();
        on_eval();
        let caught = std::panic::catch_unwind(on_eval);
        assert!(caught.is_err(), "third evaluation panics");
        on_eval(); // one-shot: the fourth is clean
        disarm();
        on_eval(); // disarmed: clean
    }

    #[test]
    fn sticky_panic_keeps_firing() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        arm(vec![Fault::PanicAtEval {
            nth: 1,
            sticky: true,
        }]);
        assert!(std::panic::catch_unwind(on_eval).is_err());
        assert!(std::panic::catch_unwind(on_eval).is_err());
        disarm();
    }

    #[test]
    fn write_failure_hits_the_kth_write() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        arm(vec![Fault::FailWrite { nth: 2 }]);
        let p = Path::new("ignored");
        assert!(on_write(p).is_ok());
        assert!(on_write(p).is_err(), "second write fails");
        assert!(on_write(p).is_ok());
        disarm();
        assert!(on_write(p).is_ok());
    }

    #[test]
    fn corruption_helpers_mutate_files() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let path = std::env::temp_dir().join(format!("mce_fi_{}.bin", std::process::id()));
        std::fs::write(&path, [0u8, 0, 0, 0]).unwrap();
        flip_bit(&path, 1, 3).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), [0u8, 8, 0, 0]);
        truncate_file(&path, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 2);
        truncate_file(&path, 100).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap().len(),
            2,
            "longer keep is a no-op"
        );
        std::fs::remove_file(&path).ok();
    }
}
