//! Structural comparison of exploration artifacts — `mce diff`.
//!
//! Replaces ad-hoc `diff`/python prefix comparisons with a comparison
//! that understands the artifact: two run reports (or two live-status
//! snapshots) are compared section by section, and the verdict is based
//! only on the *deterministic, machine-independent* content.
//!
//! ## What counts as "identical"
//!
//! Two reports are identical when their **comparable views** are equal
//! byte for byte. The comparable view is the report's stable prefix
//! (everything before `wall_clock` — see
//! [`RunReport::stable_json_prefix`]) with two further masks applied:
//!
//! 1. the optional `provenance` section is removed
//!    ([`RunReport::without_provenance`]) — explain on/off must not
//!    change the verdict;
//! 2. every effort-metric line ([`EFFORT_PREFIXES`]: the `eval_cache`
//!    section and counters, the `conex.{estimate,simulate}_jobs` job
//!    counts, and the `sim.*` simulator work metrics) is dropped —
//!    these measure how much work the run performed, which is
//!    deterministic for a *given* starting cache state but differs
//!    between a cold and a warm cache even though the exploration
//!    output is identical. They are reported as informational deltas
//!    instead.
//!
//! Everything outside the comparable view (wall-clock timings,
//! histograms, timeseries, budget events, peak RSS) is likewise shown
//! as informational context, never as a difference.

use crate::report::{self, RunReport};
use mce_error::MceError;
use mce_obs::json::{self, Value};
use std::collections::BTreeSet;

/// What kind of artifacts were compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffKind {
    /// Two run reports (`"schema"` key).
    Report,
    /// Two live-status snapshots (`"live_schema"` key).
    Live,
}

/// Result of a structural comparison.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// What was compared.
    pub kind: DiffKind,
    /// True when the deterministic views are byte-identical — the CLI
    /// exits 0 exactly then.
    pub identical: bool,
    /// Markdown rendering of the comparison.
    pub markdown: String,
}

/// Compares two serialized artifacts, inferring their kind from the
/// schema key. Both must be of the same kind.
///
/// # Errors
///
/// [`MceError::Json`] on unparseable input, [`MceError::SchemaVersion`]
/// on unknown schema versions, [`MceError::InvalidInput`] when the two
/// sides are different kinds of artifact (or neither kind).
pub fn diff_texts(
    label_a: &str,
    text_a: &str,
    label_b: &str,
    text_b: &str,
) -> Result<DiffOutcome, MceError> {
    let doc_a = parse(label_a, text_a)?;
    let doc_b = parse(label_b, text_b)?;
    match (kind_of(&doc_a), kind_of(&doc_b)) {
        (Some(DiffKind::Report), Some(DiffKind::Report)) => {
            report::check_report_schema(&doc_a)?;
            report::check_report_schema(&doc_b)?;
            Ok(diff_reports(
                label_a, text_a, &doc_a, label_b, text_b, &doc_b,
            ))
        }
        (Some(DiffKind::Live), Some(DiffKind::Live)) => {
            check_live_schema(label_a, &doc_a)?;
            check_live_schema(label_b, &doc_b)?;
            Ok(diff_live(label_a, &doc_a, label_b, &doc_b))
        }
        (Some(a), Some(b)) if a != b => Err(MceError::invalid_input(format!(
            "cannot diff a {} against a {}",
            kind_name(a),
            kind_name(b)
        ))),
        _ => Err(MceError::invalid_input(
            "inputs are neither run reports (`schema`) nor live-status \
             snapshots (`live_schema`)",
        )),
    }
}

/// Metric-name prefixes that measure execution *effort* — how much work
/// the run performed — rather than what it computed. A warm eval cache
/// legitimately changes all of them (a cache hit skips the
/// estimate/simulate job and every piece of simulator work behind it),
/// so diffs list their deltas as informational and they never affect the
/// identity verdict. The results those jobs produce (pareto fronts,
/// frontier evolution, candidate-funnel counts) stay verdict-bearing.
pub const EFFORT_PREFIXES: &[&str] = &[
    "eval_cache",
    "conex.estimate_jobs",
    "conex.simulate_jobs",
    "sim.",
    "swarm.",
];

/// Whether a serialized-report line carries an effort-prefixed key (the
/// one-line `eval_cache` section or an [`EFFORT_PREFIXES`] metric).
fn is_effort_line(line: &str) -> bool {
    line.trim_start()
        .strip_prefix('"')
        .is_some_and(|key| EFFORT_PREFIXES.iter().any(|p| key.starts_with(p)))
}

/// The deterministic comparable view of a serialized run report: stable
/// prefix, provenance stripped, effort-metric lines
/// ([`EFFORT_PREFIXES`]) dropped.
pub fn comparable_view(report_text: &str) -> String {
    // Provenance first: its removal is anchored on the `wall_clock` key,
    // which the prefix cut would otherwise strip away.
    let masked = RunReport::without_provenance(report_text);
    let masked = RunReport::stable_json_prefix(&masked);
    let mut out = String::with_capacity(masked.len());
    for line in masked.lines() {
        if is_effort_line(line) {
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn parse(label: &str, text: &str) -> Result<Value, MceError> {
    json::parse(text).map_err(|e| MceError::json(label.to_owned(), e.to_string()))
}

fn kind_of(doc: &Value) -> Option<DiffKind> {
    if doc.get("live_schema").is_some() {
        Some(DiffKind::Live)
    } else if doc.get("schema").is_some() {
        Some(DiffKind::Report)
    } else {
        None
    }
}

fn kind_name(k: DiffKind) -> &'static str {
    match k {
        DiffKind::Report => "run report",
        DiffKind::Live => "live-status snapshot",
    }
}

fn check_live_schema(label: &str, doc: &Value) -> Result<(), MceError> {
    match doc.get("live_schema").and_then(Value::as_u64) {
        Some(v) if (1..=crate::live::LIVE_SCHEMA).contains(&v) => Ok(()),
        found => Err(MceError::schema_version(
            format!("live status ({label})"),
            found.map_or_else(|| "none".to_owned(), |v| v.to_string()),
            crate::live::LIVE_SCHEMA,
        )),
    }
}

// ---------------------------------------------------------------------------
// Run-report diff
// ---------------------------------------------------------------------------

fn diff_reports(
    label_a: &str,
    text_a: &str,
    doc_a: &Value,
    label_b: &str,
    text_b: &str,
    doc_b: &Value,
) -> DiffOutcome {
    let identical = comparable_view(text_a) == comparable_view(text_b);
    let mut md = String::from("# Run diff\n\n");
    md.push_str(&format!(
        "| | A | B |\n|---|---|---|\n| source | `{label_a}` | `{label_b}` |\n"
    ));
    for key in ["workload", "workload_digest", "status", "stop_reason"] {
        md.push_str(&format!(
            "| {key} | {} | {} |\n",
            scalar_at(doc_a, key),
            scalar_at(doc_b, key)
        ));
    }
    md.push('\n');
    if identical {
        md.push_str(
            "**Deterministic sections identical.** Differences below, if \
             any, are wall-clock or cache-state context only.\n\n",
        );
    } else {
        md.push_str("**Deterministic sections differ.**\n\n");
    }
    md.push_str(&object_delta_table(
        "Config delta",
        doc_a.get("config"),
        doc_b.get("config"),
        &[],
    ));
    md.push_str(&object_delta_table(
        "Counter deltas",
        doc_a.get("counters"),
        doc_b.get("counters"),
        EFFORT_PREFIXES,
    ));
    md.push_str(&object_delta_table(
        "Gauge deltas",
        doc_a.get("gauges"),
        doc_b.get("gauges"),
        EFFORT_PREFIXES,
    ));
    md.push_str(&frontier_delta(doc_a, doc_b));
    md.push_str(&provenance_note(doc_a, doc_b));
    md.push_str(&wall_clock_context(doc_a, doc_b));
    DiffOutcome {
        kind: DiffKind::Report,
        identical,
        markdown: md,
    }
}

fn scalar_at(doc: &Value, key: &str) -> String {
    match doc.get(key) {
        None | Some(Value::Null) => "—".to_owned(),
        Some(Value::String(s)) => s.clone(),
        Some(Value::Number(n)) => format!("{n}"),
        Some(Value::Bool(b)) => b.to_string(),
        Some(_) => "…".to_owned(),
    }
}

/// A markdown table of keys whose scalar values differ between two
/// objects. Keys starting with any of `informational` prefixes are
/// listed but flagged as not affecting the verdict. Empty when nothing
/// differs.
fn object_delta_table(
    title: &str,
    a: Option<&Value>,
    b: Option<&Value>,
    informational: &[&str],
) -> String {
    let keys: BTreeSet<&String> = [a, b]
        .iter()
        .flatten()
        .filter_map(|v| match v {
            Value::Object(m) => Some(m.keys()),
            _ => None,
        })
        .flatten()
        .collect();
    let mut rows = String::new();
    for key in keys {
        let va = a.and_then(|v| scalar_opt(v, key));
        let vb = b.and_then(|v| scalar_opt(v, key));
        if va != vb {
            let note = if informational.iter().any(|p| key.starts_with(p)) {
                " (informational)"
            } else {
                ""
            };
            rows.push_str(&format!(
                "| {key}{note} | {} | {} |\n",
                va.unwrap_or_else(|| "—".to_owned()),
                vb.unwrap_or_else(|| "—".to_owned()),
            ));
        }
    }
    if rows.is_empty() {
        String::new()
    } else {
        format!("## {title}\n\n| key | A | B |\n|---|---|---|\n{rows}\n")
    }
}

fn scalar_opt(doc: &Value, key: &str) -> Option<String> {
    doc.get(key).map(|v| match v {
        Value::Null => "null".to_owned(),
        Value::String(s) => s.clone(),
        Value::Number(n) => format!("{n}"),
        Value::Bool(b) => b.to_string(),
        _ => "…".to_owned(),
    })
}

fn front_points(doc: &Value) -> Vec<String> {
    doc.get("pareto")
        .and_then(|p| p.get("front_cost_latency"))
        .and_then(Value::as_array)
        .map(|pts| {
            pts.iter()
                .filter_map(|pt| {
                    let xy = pt.as_array()?;
                    Some(format!(
                        "({}, {})",
                        xy.first()?.as_f64()?,
                        xy.get(1)?.as_f64()?
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn last_hypervolume(doc: &Value) -> f64 {
    doc.get("frontier_evolution")
        .and_then(Value::as_array)
        .and_then(<[Value]>::last)
        .and_then(|s| s.get("hypervolume"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
}

/// Frontier movement: cost/latency points gained and lost between the
/// two runs, plus the hypervolume delta. Empty when the frontier did
/// not move.
fn frontier_delta(doc_a: &Value, doc_b: &Value) -> String {
    let pa: BTreeSet<String> = front_points(doc_a).into_iter().collect();
    let pb: BTreeSet<String> = front_points(doc_b).into_iter().collect();
    let gained: Vec<&String> = pb.difference(&pa).collect();
    let lost: Vec<&String> = pa.difference(&pb).collect();
    let (hv_a, hv_b) = (last_hypervolume(doc_a), last_hypervolume(doc_b));
    let hv_moved = (hv_a - hv_b).abs() > 1e-12;
    if gained.is_empty() && lost.is_empty() && !hv_moved {
        return String::new();
    }
    let mut out = String::from("## Frontier movement\n\n");
    out.push_str(&format!(
        "Cost/latency frontier: {} point(s) gained, {} lost. \
         Hypervolume {hv_a} → {hv_b} ({}{}).\n\n",
        gained.len(),
        lost.len(),
        if hv_b >= hv_a { "+" } else { "" },
        hv_b - hv_a,
    ));
    for p in &gained {
        out.push_str(&format!("- gained {p}\n"));
    }
    for p in &lost {
        out.push_str(&format!("- lost {p}\n"));
    }
    if !gained.is_empty() || !lost.is_empty() {
        out.push('\n');
    }
    out
}

fn provenance_note(doc_a: &Value, doc_b: &Value) -> String {
    let count = |doc: &Value| {
        doc.get("provenance")
            .and_then(|p| p.get("archs"))
            .and_then(Value::as_array)
            .map(<[Value]>::len)
    };
    match (count(doc_a), count(doc_b)) {
        (None, None) => String::new(),
        (a, b) => format!(
            "## Provenance\n\nA: {}, B: {}. Provenance is masked from the \
             verdict — explained and unexplained runs of the same \
             exploration compare as identical.\n\n",
            a.map_or_else(
                || "not explained".to_owned(),
                |n| format!("{n} arch record(s)")
            ),
            b.map_or_else(
                || "not explained".to_owned(),
                |n| format!("{n} arch record(s)")
            ),
        ),
    }
}

/// Wall-clock context: elapsed time, threads, peak RSS, degraded
/// evaluation counts. Informational only.
fn wall_clock_context(doc_a: &Value, doc_b: &Value) -> String {
    let wc = |doc: &Value, k: &str| {
        doc.get("wall_clock")
            .and_then(|w| w.get(k))
            .map_or_else(|| "—".to_owned(), scalar_at_value)
    };
    let mut out =
        String::from("## Wall-clock context (informational)\n\n| | A | B |\n|---|---|---|\n");
    for key in ["elapsed_s", "threads", "resumed", "peak_rss_bytes"] {
        out.push_str(&format!(
            "| {key} | {} | {} |\n",
            wc(doc_a, key),
            wc(doc_b, key)
        ));
    }
    out.push('\n');
    out
}

fn scalar_at_value(v: &Value) -> String {
    match v {
        Value::Null => "—".to_owned(),
        Value::String(s) => s.clone(),
        Value::Number(n) => format!("{n}"),
        Value::Bool(b) => b.to_string(),
        _ => "…".to_owned(),
    }
}

// ---------------------------------------------------------------------------
// Live-status diff
// ---------------------------------------------------------------------------

/// The deterministic slice of a live-status snapshot: progress and
/// funnel state, no timings or worker occupancy.
fn live_view(doc: &Value) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for key in [
        "workload",
        "status",
        "stop_reason",
        "phase",
        "archs_done",
        "archs_total",
    ] {
        out.push((key.to_owned(), scalar_at(doc, key)));
    }
    for (section, fields) in [
        ("candidates", &["enumerated", "estimated", "simulated"][..]),
        ("frontier", &["size", "hypervolume"][..]),
    ] {
        for f in fields {
            let v = doc
                .get(section)
                .and_then(|s| s.get(f))
                .map_or_else(|| "—".to_owned(), scalar_at_value);
            out.push((format!("{section}.{f}"), v));
        }
    }
    out
}

fn diff_live(label_a: &str, doc_a: &Value, label_b: &str, doc_b: &Value) -> DiffOutcome {
    let (va, vb) = (live_view(doc_a), live_view(doc_b));
    let identical = va == vb;
    let mut md = String::from("# Live-status diff\n\n");
    md.push_str(&format!(
        "Comparing `{label_a}` (A) against `{label_b}` (B).\n\n"
    ));
    if identical {
        md.push_str("**Deterministic sections identical.**\n\n");
    } else {
        md.push_str("**Deterministic sections differ.**\n\n");
    }
    md.push_str("| key | A | B |\n|---|---|---|\n");
    for ((k, a), (_, b)) in va.iter().zip(vb.iter()) {
        let marker = if a == b { "" } else { " ≠" };
        md.push_str(&format!("| {k}{marker} | {a} | {b} |\n"));
    }
    md.push('\n');
    DiffOutcome {
        kind: DiffKind::Live,
        identical,
        markdown: md,
    }
}

// ---------------------------------------------------------------------------
// Bench trajectory (`mce diff --bench`)
// ---------------------------------------------------------------------------

/// Renders a bench trajectory (JSONL of successive `BENCH_eval.json`
/// snapshots, appended by `mce bench-gate --record`) as a markdown
/// trend summary: one row per numeric field with a sparkline over the
/// recorded series and the relative change from first to last entry.
///
/// # Errors
///
/// [`MceError::Json`] on a malformed line, [`MceError::InvalidInput`]
/// when the file holds no entries.
pub fn render_bench_trajectory(jsonl: &str) -> Result<String, MceError> {
    let mut docs = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        docs.push(
            json::parse(line)
                .map_err(|e| MceError::json(format!("trajectory line {}", i + 1), e.to_string()))?,
        );
    }
    if docs.is_empty() {
        return Err(MceError::invalid_input(
            "bench trajectory is empty — record entries with `mce bench-gate --record`",
        ));
    }
    let fields: BTreeSet<&String> = docs
        .iter()
        .filter_map(|d| match d {
            Value::Object(m) => Some(m.keys()),
            _ => None,
        })
        .flatten()
        .collect();
    let mut out = format!(
        "# Bench trajectory\n\n{} recorded run(s).\n\n\
         | field | first | last | change | trend |\n|---|---|---|---|---|\n",
        docs.len()
    );
    for field in fields {
        let series: Vec<f64> = docs
            .iter()
            .filter_map(|d| d.get(field).and_then(Value::as_f64))
            .collect();
        if series.is_empty() {
            continue;
        }
        let (first, last) = (series[0], series[series.len() - 1]);
        let change = if first.abs() > f64::EPSILON {
            format!("{:+.1}%", (last - first) / first * 100.0)
        } else {
            "—".to_owned()
        };
        let scaled: Vec<u64> = series.iter().map(|v| (v * 1000.0) as u64).collect();
        out.push_str(&format!(
            "| {field} | {first} | {last} | {change} | {} |\n",
            crate::live::sparkline(&scaled)
        ));
    }
    out.push('\n');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(workload: &str, enumerated: u64, cache_hits: u64, elapsed: f64) -> String {
        format!(
            "{{\n  \"schema\": 1,\n  \"workload\": \"{workload}\",\n  \
             \"workload_digest\": \"abcd\",\n  \"status\": \"completed\",\n  \
             \"stop_reason\": null,\n  \"config\": {{\n    \"conex_trace_len\": 15000,\n    \
             \"local_keep\": 16\n  }},\n  \"counters\": {{\n    \
             \"conex.candidates_enumerated\": {enumerated},\n    \
             \"eval_cache.hits\": {cache_hits}\n  }},\n  \
             \"eval_cache\": {{\"hits\": {cache_hits}, \"misses\": 2}},\n  \
             \"pareto\": {{\n    \"cost_latency\": 2,\n    \
             \"front_cost_latency\": [[900, 4.5], [1200, 3.25]]\n  }},\n  \
             \"frontier_evolution\": [\n    {{\"archs_explored\": 1, \"estimated\": 40, \
             \"frontier_size\": 5, \"hypervolume\": 0.375}}\n  ],\n  \
             \"wall_clock\": {{\"elapsed_s\": {elapsed}, \"threads\": 4}}\n}}\n"
        )
    }

    #[test]
    fn identical_deterministic_sections_compare_equal() {
        // Same exploration: different wall clock AND different cache
        // stats (hot vs cold) — still identical.
        let a = report("vocoder", 120, 0, 1.5);
        let b = report("vocoder", 120, 50, 9.0);
        let out = diff_texts("a.json", &a, "b.json", &b).unwrap();
        assert_eq!(out.kind, DiffKind::Report);
        assert!(out.identical, "{}", out.markdown);
        assert!(out.markdown.contains("Deterministic sections identical"));
        // Cache-stat movement still surfaces as informational context.
        assert!(out.markdown.contains("eval_cache.hits (informational)"));
    }

    #[test]
    fn deterministic_difference_is_structured_not_textual() {
        let a = report("vocoder", 120, 0, 1.5);
        let b = report("vocoder", 220, 0, 1.5);
        let out = diff_texts("a.json", &a, "b.json", &b).unwrap();
        assert!(!out.identical);
        assert!(out.markdown.contains("Deterministic sections differ"));
        assert!(
            out.markdown
                .contains("| conex.candidates_enumerated | 120 | 220 |"),
            "{}",
            out.markdown
        );
    }

    #[test]
    fn frontier_movement_reports_gained_lost_and_hypervolume() {
        let a = report("vocoder", 120, 0, 1.5);
        let b = a
            .replace("[900, 4.5], [1200, 3.25]", "[900, 4.5], [1000, 3.0]")
            .replace("\"hypervolume\": 0.375", "\"hypervolume\": 0.5");
        let out = diff_texts("a.json", &a, "b.json", &b).unwrap();
        assert!(!out.identical);
        assert!(
            out.markdown.contains("1 point(s) gained, 1 lost"),
            "{}",
            out.markdown
        );
        assert!(
            out.markdown.contains("gained (1000, 3)"),
            "{}",
            out.markdown
        );
        assert!(
            out.markdown.contains("lost (1200, 3.25)"),
            "{}",
            out.markdown
        );
        assert!(out.markdown.contains("0.375 → 0.5"), "{}", out.markdown);
    }

    #[test]
    fn provenance_is_masked_from_the_verdict() {
        let a = report("vocoder", 120, 0, 1.5);
        // Placed in the serializer's canonical slot: directly before
        // wall_clock. The mask cuts [provenance, wall_clock), so the
        // contract only holds for reports our serializer wrote.
        let b = a.replace(
            "  \"wall_clock\"",
            "  \"provenance\": {\"schema\": 1, \"archs\": [{\"arch\": 0, \
             \"mem\": \"m\", \"kept\": 1, \"pruned\": 0, \"points\": []}]},\n  \
             \"wall_clock\"",
        );
        let out = diff_texts("plain.json", &a, "explained.json", &b).unwrap();
        assert!(out.identical, "{}", out.markdown);
        assert!(
            out.markdown.contains("1 arch record(s)"),
            "{}",
            out.markdown
        );
        assert!(out.markdown.contains("not explained"), "{}", out.markdown);
    }

    #[test]
    fn mixed_kinds_and_garbage_are_typed_errors() {
        let r = report("vocoder", 120, 0, 1.5);
        let live = "{\"live_schema\": 1, \"workload\": \"vocoder\", \"status\": \"running\"}";
        assert!(matches!(
            diff_texts("a", &r, "b", live).unwrap_err(),
            MceError::InvalidInput { .. }
        ));
        assert!(matches!(
            diff_texts("a", "nope", "b", &r).unwrap_err(),
            MceError::Json { .. }
        ));
        assert!(matches!(
            diff_texts("a", "{}", "b", "{}").unwrap_err(),
            MceError::InvalidInput { .. }
        ));
        assert!(matches!(
            diff_texts("a", "{\"schema\": 99}", "b", &r).unwrap_err(),
            MceError::SchemaVersion { .. }
        ));
    }

    #[test]
    fn live_snapshots_compare_on_progress_not_timing() {
        let a = "{\"live_schema\": 1, \"workload\": \"vocoder\", \"status\": \"running\", \
                 \"phase\": \"phase1\", \"archs_done\": 3, \"archs_total\": 10, \
                 \"candidates\": {\"enumerated\": 100, \"estimated\": 40, \"simulated\": 0}, \
                 \"frontier\": {\"size\": 5, \"hypervolume\": 0.3}, \"elapsed_s\": 2.0}";
        let b = a.replace("\"elapsed_s\": 2.0", "\"elapsed_s\": 99.0");
        let out = diff_texts("a", a, "b", &b).unwrap();
        assert_eq!(out.kind, DiffKind::Live);
        assert!(out.identical);

        let c = a.replace("\"archs_done\": 3", "\"archs_done\": 7");
        let out = diff_texts("a", a, "c", &c).unwrap();
        assert!(!out.identical);
        assert!(
            out.markdown.contains("| archs_done ≠ | 3 | 7 |"),
            "{}",
            out.markdown
        );
    }

    #[test]
    fn bench_trajectory_renders_trends() {
        let jsonl = "{\"per_access_dispatch_ns\": 1000.0, \"block_replay_ns\": 500.0}\n\
                     {\"per_access_dispatch_ns\": 1100.0, \"block_replay_ns\": 450.0}\n";
        let md = render_bench_trajectory(jsonl).unwrap();
        assert!(md.contains("2 recorded run(s)"));
        assert!(
            md.contains("| per_access_dispatch_ns | 1000 | 1100 | +10.0% |"),
            "{md}"
        );
        assert!(
            md.contains("| block_replay_ns | 500 | 450 | -10.0% |"),
            "{md}"
        );
        assert!(matches!(
            render_bench_trajectory("").unwrap_err(),
            MceError::InvalidInput { .. }
        ));
        assert!(matches!(
            render_bench_trajectory("garbage\n").unwrap_err(),
            MceError::Json { .. }
        ));
    }
}
