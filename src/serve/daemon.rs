//! The `mce serve` daemon: pidfile, listener, request routing, the job
//! executor, and graceful drain.
//!
//! One executor thread runs jobs strictly in submission order (lowest
//! id first, honoring retry backoff), each through an
//! [`ExplorationSession`] carrying a per-job [`CancelToken`] that
//! encodes the job's deadline *and* watches the process-wide
//! termination flag — so a single SIGTERM/SIGINT drains the daemon and
//! stops the running job at its next safe point, checkpoint intact.
//!
//! Every acknowledgement the HTTP edge sends is backed by an fsynced
//! journal record first; the daemon can be SIGKILLed at any instant and
//! the restart replays the journal back to the exact acknowledged
//! state, requeueing (not recomputing) whatever was running.

use super::journal::{fold, JobEvent, JobJournal, JobRecord, JobSpec, JobState};
use super::{
    addr_path, http, job_checkpoint_path, job_report_path, job_status_path, journal_path,
    json_string, log_path, pid_path, status_path, SERVE_SCHEMA,
};
use crate::archive::RunArchive;
use crate::session::ExplorationSession;
use crate::swarm::backoff_after;
use mce_budget::{CancelReason, CancelToken};
use mce_error::{atomic_write, sweep_stale_tmps, MceError};
use mce_sim::Preset;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Everything `mce serve` needs to run one daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The serve directory: journal, pidfile, per-job files, log.
    pub dir: PathBuf,
    /// Listen address. The default `127.0.0.1:0` binds an ephemeral
    /// port; the *bound* address is published to `serve.addr`.
    pub addr: String,
    /// The run archive completed job reports are added to.
    pub archive: PathBuf,
    /// First-retry backoff delay (doubles per charged attempt).
    pub backoff_base: Duration,
    /// Backoff saturation cap.
    pub backoff_cap: Duration,
    /// Per-socket read deadline (slow-loris guard).
    pub read_deadline: Duration,
}

impl ServeConfig {
    /// A config with the service defaults: loopback ephemeral port,
    /// `target/mce-runs` archive, 250 ms backoff doubling to 5 s, 2 s
    /// read deadline.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            dir: dir.into(),
            addr: "127.0.0.1:0".to_owned(),
            archive: PathBuf::from("target/mce-runs"),
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_millis(5000),
            read_deadline: http::READ_DEADLINE,
        }
    }
}

struct ServeLog {
    file: std::fs::File,
    started: Instant,
}

impl ServeLog {
    fn open(path: &Path) -> Result<Self, MceError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| MceError::io(format!("open serve log {}", path.display()), e))?;
        Ok(ServeLog {
            file,
            started: Instant::now(),
        })
    }

    fn line(&mut self, msg: &str) {
        let ms = self.started.elapsed().as_millis();
        let _ = writeln!(self.file, "[{ms:>7} ms] {msg}");
        let _ = self.file.flush();
    }
}

/// A job's folded record plus the executor's runtime bits.
struct JobView {
    record: JobRecord,
    /// The running attempt's token (present only while running).
    token: Option<CancelToken>,
    /// A client asked for cancellation; the next interrupt-truncated
    /// outcome is `Canceled`, not a drain `Requeued`.
    cancel_requested: bool,
    /// Retry backoff gate.
    backoff_until: Option<Instant>,
}

struct Shared {
    cfg: ServeConfig,
    journal: JobJournal,
    jobs: Mutex<BTreeMap<u64, JobView>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    log: Mutex<ServeLog>,
}

impl Shared {
    fn log(&self, msg: &str) {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .line(msg);
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }
}

/// Whether `pid` names a live process. Conservatively `true` off Linux:
/// a doubtful pidfile then refuses the double-start instead of risking
/// two daemons on one journal.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Runs the daemon until a termination signal drains it.
///
/// # Errors
///
/// Fails on startup problems only — another live daemon owning the
/// pidfile, an unbindable address, an unopenable journal. Once serving,
/// faults are answered, logged, retried or journaled; they do not bring
/// the daemon down.
pub fn run_daemon(cfg: ServeConfig) -> Result<(), MceError> {
    std::fs::create_dir_all(&cfg.dir)
        .map_err(|e| MceError::io(format!("create serve dir {}", cfg.dir.display()), e))?;
    sweep_stale_tmps(status_path(&cfg.dir));
    let mut log = ServeLog::open(&log_path(&cfg.dir))?;

    // Pidfile with stale-lock detection: refuse a double-start against
    // a live daemon, recover silently from a crashed one's leftovers.
    let pidfile = pid_path(&cfg.dir);
    if let Ok(text) = std::fs::read_to_string(&pidfile) {
        match text.trim().parse::<u32>() {
            Ok(pid) if pid_alive(pid) => {
                return Err(MceError::invalid_input(format!(
                    "a daemon (pid {pid}) already serves {}; stop it first",
                    cfg.dir.display()
                )));
            }
            _ => log.line(&format!(
                "recovered stale pidfile (`{}`): previous daemon is gone",
                text.trim()
            )),
        }
    }
    let pid = std::process::id();
    atomic_write(&pidfile, format!("{pid}\n").as_bytes())?;

    // From here on SIGTERM and SIGINT mean "drain", observed at the
    // accept loop and by every running job's cancel token.
    mce_budget::clear_interrupt();
    mce_budget::install_termination_handlers();

    // Replay the journal: the acknowledged world, minus any torn tail.
    let (events, dropped) = super::journal::replay(&journal_path(&cfg.dir))?;
    if dropped > 0 {
        log.line(&format!(
            "journal replay dropped {dropped} damaged tail record(s)"
        ));
    }
    let records = fold(&events);
    let journal = JobJournal::open(journal_path(&cfg.dir))?;
    let next_id = records.keys().max().copied().unwrap_or(0) + 1;
    let mut jobs: BTreeMap<u64, JobView> = BTreeMap::new();
    let mut recovered = 0usize;
    for (id, mut record) in records {
        // A job journaled as running means the previous daemon died
        // mid-job: requeue it explicitly (uncharged) so the recovery is
        // itself journaled, then resume from its checkpoint.
        if record.state == JobState::Running {
            journal.append(&JobEvent::Requeued { id })?;
            record.state = JobState::Queued;
            record.attempts = record.attempts.saturating_sub(1);
            recovered += 1;
        }
        jobs.insert(
            id,
            JobView {
                record,
                token: None,
                cancel_requested: false,
                backoff_until: None,
            },
        );
    }
    log.line(&format!(
        "serve start: pid {pid}, {} job(s) replayed ({recovered} recovered mid-run)",
        jobs.len()
    ));

    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| MceError::io(format!("bind {}", cfg.addr), e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| MceError::io("resolve bound address", e))?
        .to_string();
    atomic_write(addr_path(&cfg.dir), format!("{addr}\n").as_bytes())?;
    listener
        .set_nonblocking(true)
        .map_err(|e| MceError::io("set listener nonblocking", e))?;
    log.line(&format!("listening on {addr}"));
    eprintln!("mce serve: listening on {addr} (dir {})", cfg.dir.display());

    let shared = Arc::new(Shared {
        cfg,
        journal,
        jobs: Mutex::new(jobs),
        next_id: AtomicU64::new(next_id),
        draining: AtomicBool::new(false),
        log: Mutex::new(log),
    });
    write_status(&shared, &addr);
    let executor = {
        let shared = shared.clone();
        std::thread::spawn(move || executor_loop(&shared))
    };

    // The accept loop. On a termination signal it flips to draining —
    // still answering requests (health checks see the drain, admissions
    // are refused) — and exits once the executor has wound down.
    let mut last_status = Instant::now();
    loop {
        if mce_budget::interrupted() && !shared.draining() {
            shared.draining.store(true, Ordering::Relaxed);
            shared.log("drain: stop admitting; waiting for the running job's safe point");
            write_status(&shared, &addr);
        }
        if shared.draining() && executor.is_finished() {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let shared = shared.clone();
                std::thread::spawn(move || handle_connection(&shared, stream, &peer.to_string()));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                shared.log(&format!("accept failed: {e}"));
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        if last_status.elapsed() >= Duration::from_millis(500) {
            write_status(&shared, &addr);
            last_status = Instant::now();
        }
    }
    let _ = executor.join();
    write_status(&shared, &addr);
    let _ = std::fs::remove_file(addr_path(&shared.cfg.dir));
    let _ = std::fs::remove_file(pid_path(&shared.cfg.dir));
    shared.log("drained: journal flushed, pidfile removed, exiting 0");
    eprintln!("mce serve: drained cleanly");
    Ok(())
}

// ---------------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------------

enum RunOutcome {
    /// The session finished (or hit the bound the spec asked for).
    Finished { report: String },
    /// The per-job deadline tripped; progress is checkpointed.
    Deadline,
    /// The token was cancelled (client cancel or daemon drain).
    Interrupted,
    /// The session errored.
    Failed(String),
}

fn executor_loop(shared: &Arc<Shared>) {
    loop {
        // Check the raw termination flag too, not just `draining` — the
        // accept loop flips that a poll later, and the gap would let the
        // executor pick the just-requeued job back up for one futile
        // Started/Requeued round.
        if shared.draining() || mce_budget::interrupted() {
            // Queued jobs stay journaled as queued — nothing to do.
            break;
        }
        let picked = {
            let mut jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            let now = Instant::now();
            let id = jobs
                .iter()
                .filter(|(_, v)| v.record.state == JobState::Queued)
                .filter(|(_, v)| v.backoff_until.is_none_or(|until| now >= until))
                .map(|(id, _)| *id)
                .next();
            id.map(|id| {
                let view = jobs.get_mut(&id).expect("picked from this map");
                let attempt = view.record.attempts + 1;
                (id, view.record.spec.clone(), attempt)
            })
        };
        let Some((id, spec, attempt)) = picked else {
            std::thread::sleep(Duration::from_millis(25));
            continue;
        };
        if let Err(e) = shared.journal.append(&JobEvent::Started {
            id,
            attempt,
            pid: std::process::id(),
        }) {
            // The pickup is not durable: leave the job queued and try
            // again later rather than running work the journal lost.
            shared.log(&format!("job {id}: journal write failed ({e}); holding"));
            std::thread::sleep(Duration::from_millis(500));
            continue;
        }
        let deadline = (spec.deadline_ms > 0).then(|| Duration::from_millis(spec.deadline_ms));
        let token = CancelToken::bounded(deadline, true);
        {
            let mut jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(view) = jobs.get_mut(&id) {
                view.record.state = JobState::Running;
                view.record.attempts = attempt;
                view.token = Some(token.clone());
                view.backoff_until = None;
            }
        }
        shared.log(&format!(
            "job {id}: started attempt {attempt} (workload `{}`, preset {})",
            spec.workload.name(),
            spec.preset
        ));
        let outcome = run_job(shared, id, &spec, &token);
        settle_job(shared, id, &spec, attempt, outcome);
    }
}

/// Runs one attempt. The fault hook fires at pickup: `die_at_job`
/// SIGKILLs the daemon here — after the `Started` record, before any
/// progress — and `stall_job` wedges the attempt on its token exactly
/// as a hung exploration would.
fn run_job(shared: &Arc<Shared>, id: u64, spec: &JobSpec, token: &CancelToken) -> RunOutcome {
    #[cfg(feature = "fault-injection")]
    if mce_faultinject::on_job() {
        shared.log(&format!("job {id}: stalled by fault injection"));
        while !token.is_cancelled() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    if token.is_cancelled() {
        return match token.reason() {
            Some(CancelReason::Deadline) => RunOutcome::Deadline,
            _ => RunOutcome::Interrupted,
        };
    }
    let preset: Preset = match spec.preset.parse() {
        Ok(preset) => preset,
        Err(e) => return RunOutcome::Failed(format!("invalid preset `{}`: {e}", spec.preset)),
    };
    // Each attempt gets a fresh metrics registry behind a null sink
    // (install resets the registries), so the job's report carries the
    // same counters a serial `mce explore --report-out` records.
    mce_obs::install(std::sync::Arc::new(mce_obs::NullSink::new()));
    let dir = &shared.cfg.dir;
    let mut session = ExplorationSession::new(spec.workload.clone())
        .preset(preset)
        .checkpoint_file(job_checkpoint_path(dir, id))
        .checkpoint_every(1)
        .live_status_file(job_status_path(dir, id))
        .cancel_token(token.clone());
    if spec.threads > 0 {
        session = session.threads(spec.threads);
    }
    if spec.max_evals > 0 {
        session = session.max_evals(spec.max_evals);
    }
    if spec.max_archs > 0 {
        session = session.max_archs(spec.max_archs);
    }
    let outcome = match session.run() {
        Ok(result) => match result.conex.stop_reason() {
            // The spec's own logical bounds are the job's definition of
            // done; wall-clock truncations are not.
            None | Some("max-evals") | Some("max-archs") => RunOutcome::Finished {
                report: result.report.to_json(),
            },
            Some("deadline") => RunOutcome::Deadline,
            Some(_) => RunOutcome::Interrupted,
        },
        Err(e) => RunOutcome::Failed(e.to_string()),
    };
    mce_obs::uninstall();
    outcome
}

/// Journals and applies one attempt's outcome.
fn settle_job(shared: &Arc<Shared>, id: u64, spec: &JobSpec, attempt: u32, outcome: RunOutcome) {
    let cancel_requested = {
        let jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        jobs.get(&id).is_some_and(|v| v.cancel_requested)
    };
    let dir = shared.cfg.dir.clone();
    let (event, state, attempts_back, backoff) = match outcome {
        RunOutcome::Finished { report } => {
            if let Err(e) = atomic_write(job_report_path(&dir, id), report.as_bytes()) {
                // No durable report, no Done: charge the attempt.
                let msg = format!("cannot write report: {e}");
                shared.log(&format!("job {id}: {msg}"));
                retry_or_fail(shared, id, spec, attempt, msg);
                return;
            }
            match RunArchive::open(&shared.cfg.archive).add(&report) {
                Ok(added) => shared.log(&format!(
                    "job {id}: done (report archived as {}{})",
                    added.digest,
                    if added.duplicate { ", duplicate" } else { "" }
                )),
                Err(e) => shared.log(&format!("job {id}: done (archive add failed: {e})")),
            }
            let _ = std::fs::remove_file(job_checkpoint_path(&dir, id));
            (JobEvent::Done { id }, JobState::Done, false, None)
        }
        RunOutcome::Deadline => {
            if attempt <= spec.retry_budget {
                let delay = backoff_after(attempt, shared.cfg.backoff_base, shared.cfg.backoff_cap);
                shared.log(&format!(
                    "job {id}: attempt {attempt} hit its deadline; retrying in {} ms \
                     (checkpoint kept)",
                    delay.as_millis()
                ));
                (
                    JobEvent::Retrying {
                        id,
                        reason: "deadline exceeded".to_owned(),
                    },
                    JobState::Queued,
                    false,
                    Some(Instant::now() + delay),
                )
            } else {
                shared.log(&format!(
                    "job {id}: timed out terminally after {attempt} attempt(s)"
                ));
                (JobEvent::TimedOut { id }, JobState::TimedOut, false, None)
            }
        }
        RunOutcome::Interrupted if cancel_requested => {
            let _ = std::fs::remove_file(job_checkpoint_path(&dir, id));
            shared.log(&format!("job {id}: cancelled by client"));
            (JobEvent::Canceled { id }, JobState::Canceled, false, None)
        }
        RunOutcome::Interrupted => {
            // Drain: back to the queue, uncharged, checkpoint kept.
            shared.log(&format!(
                "job {id}: requeued by drain at a safe point (checkpoint kept)"
            ));
            (JobEvent::Requeued { id }, JobState::Queued, true, None)
        }
        RunOutcome::Failed(error) => {
            retry_or_fail(shared, id, spec, attempt, error);
            return;
        }
    };
    if let Err(e) = shared.journal.append(&event) {
        shared.log(&format!("job {id}: journal write failed ({e})"));
    }
    let mut jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(view) = jobs.get_mut(&id) {
        view.record.state = state;
        if state == JobState::TimedOut {
            view.record.error = Some("deadline exceeded".to_owned());
        }
        if attempts_back {
            view.record.attempts = view.record.attempts.saturating_sub(1);
        }
        view.token = None;
        view.backoff_until = backoff;
    }
}

fn retry_or_fail(shared: &Arc<Shared>, id: u64, spec: &JobSpec, attempt: u32, error: String) {
    let (event, state, backoff) = if attempt <= spec.retry_budget {
        let delay = backoff_after(attempt, shared.cfg.backoff_base, shared.cfg.backoff_cap);
        shared.log(&format!(
            "job {id}: attempt {attempt} failed ({error}); retrying in {} ms",
            delay.as_millis()
        ));
        (
            JobEvent::Retrying {
                id,
                reason: error.clone(),
            },
            JobState::Queued,
            Some(Instant::now() + delay),
        )
    } else {
        shared.log(&format!(
            "job {id}: failed terminally after {attempt} attempt(s): {error}"
        ));
        (
            JobEvent::Failed {
                id,
                error: error.clone(),
            },
            JobState::Failed,
            None,
        )
    };
    if let Err(e) = shared.journal.append(&event) {
        shared.log(&format!("job {id}: journal write failed ({e})"));
    }
    let mut jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(view) = jobs.get_mut(&id) {
        view.record.state = state;
        view.record.error = Some(error);
        view.token = None;
        view.backoff_until = backoff;
    }
}

// ---------------------------------------------------------------------------
// The HTTP edge
// ---------------------------------------------------------------------------

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream, peer: &str) {
    let request = match http::read_request(&mut stream, shared.cfg.read_deadline) {
        Ok(request) => request,
        Err(err) => {
            shared.log(&format!("{peer}: rejected request ({})", err.detail));
            http::write_error(&mut stream, &err);
            return;
        }
    };
    let (status, body) = route(shared, &request);
    http::write_response(&mut stream, status, "application/json", &body);
}

fn route(shared: &Arc<Shared>, request: &http::Request) -> (u16, String) {
    let path = request.path.as_str();
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (
            200,
            format!(
                "{{\"ok\":true,\"pid\":{},\"schema\":{SERVE_SCHEMA}}}\n",
                std::process::id()
            ),
        ),
        ("GET", ["readyz"]) => {
            if shared.draining() {
                (503, "{\"ready\":false,\"draining\":true}\n".to_owned())
            } else {
                (200, "{\"ready\":true}\n".to_owned())
            }
        }
        ("POST", ["jobs"]) => submit(shared, &request.body),
        ("GET", ["jobs"]) => {
            let jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            let mut out = String::new();
            for view in jobs.values() {
                out.push_str(&summary_json(&view.record));
                out.push('\n');
            }
            (200, out)
        }
        ("GET", ["jobs", id]) => with_job(shared, id, |view| (200, summary_json(&view.record))),
        ("POST", ["jobs", id, "cancel"]) => cancel(shared, id),
        ("GET", ["jobs", id, "result"]) => result(shared, id),
        (_, ["healthz" | "readyz" | "jobs", ..]) => {
            (405, error_json(405, "method not allowed for this path"))
        }
        _ => (404, error_json(404, &format!("no such endpoint `{path}`"))),
    }
}

fn submit(shared: &Arc<Shared>, body: &[u8]) -> (u16, String) {
    if shared.draining() {
        return (503, error_json(503, "draining: not admitting new jobs"));
    }
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return (400, error_json(400, "job spec is not UTF-8")),
    };
    let spec: JobSpec = match serde_json::from_str(text) {
        Ok(spec) => spec,
        Err(e) => return (400, error_json(400, &format!("invalid job spec: {e}"))),
    };
    if spec.preset.parse::<Preset>().is_err() {
        return (
            400,
            error_json(400, &format!("unknown preset `{}`", spec.preset)),
        );
    }
    // Id assignment, the durable Submitted record and the table insert
    // happen under one lock so the journal's Submitted order matches
    // the id order.
    let mut jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let event = JobEvent::Submitted {
        id,
        spec: spec.clone(),
    };
    if let Err(e) = shared.journal.append(&event) {
        shared.log(&format!("job {id}: admission journal write failed ({e})"));
        return (
            503,
            error_json(503, "journal write failed; job not accepted"),
        );
    }
    jobs.insert(
        id,
        JobView {
            record: JobRecord {
                id,
                spec: spec.clone(),
                state: JobState::Queued,
                attempts: 0,
                error: None,
            },
            token: None,
            cancel_requested: false,
            backoff_until: None,
        },
    );
    drop(jobs);
    shared.log(&format!(
        "job {id}: submitted (workload `{}`, preset {}, deadline {} ms, retries {})",
        spec.workload.name(),
        spec.preset,
        spec.deadline_ms,
        spec.retry_budget
    ));
    (200, format!("{{\"id\":{id},\"state\":\"queued\"}}\n"))
}

fn cancel(shared: &Arc<Shared>, id: &str) -> (u16, String) {
    let Ok(id) = id.parse::<u64>() else {
        return (400, error_json(400, "job id is not a number"));
    };
    let mut jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(view) = jobs.get_mut(&id) else {
        return (404, error_json(404, &format!("no job {id}")));
    };
    match view.record.state {
        state if state.is_terminal() => (
            409,
            error_json(409, &format!("job {id} is already {}", state.as_str())),
        ),
        JobState::Running => {
            view.cancel_requested = true;
            if let Some(token) = &view.token {
                token.cancel(CancelReason::Interrupt);
            }
            shared.log(&format!("job {id}: cancellation requested"));
            (202, format!("{{\"id\":{id},\"state\":\"canceling\"}}\n"))
        }
        _ => {
            // Queued: cancel immediately and durably.
            if let Err(e) = shared.journal.append(&JobEvent::Canceled { id }) {
                shared.log(&format!("job {id}: cancel journal write failed ({e})"));
                return (503, error_json(503, "journal write failed; not cancelled"));
            }
            view.record.state = JobState::Canceled;
            shared.log(&format!("job {id}: cancelled while queued"));
            (200, format!("{{\"id\":{id},\"state\":\"canceled\"}}\n"))
        }
    }
}

fn result(shared: &Arc<Shared>, id: &str) -> (u16, String) {
    let Ok(id) = id.parse::<u64>() else {
        return (400, error_json(400, "job id is not a number"));
    };
    let state = {
        let jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        match jobs.get(&id) {
            Some(view) => view.record.state,
            None => return (404, error_json(404, &format!("no job {id}"))),
        }
    };
    if state != JobState::Done {
        return (
            409,
            error_json(409, &format!("job {id} is {}, not done", state.as_str())),
        );
    }
    match std::fs::read_to_string(job_report_path(&shared.cfg.dir, id)) {
        Ok(report) => (200, report),
        Err(e) => (
            409,
            error_json(409, &format!("report for job {id} unreadable: {e}")),
        ),
    }
}

fn with_job(
    shared: &Arc<Shared>,
    id: &str,
    f: impl FnOnce(&JobView) -> (u16, String),
) -> (u16, String) {
    let Ok(id) = id.parse::<u64>() else {
        return (400, error_json(400, "job id is not a number"));
    };
    let jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
    match jobs.get(&id) {
        Some(view) => f(view),
        None => (404, error_json(404, &format!("no job {id}"))),
    }
}

fn error_json(status: u16, detail: &str) -> String {
    format!(
        "{{\"error\":{},\"status\":{status}}}\n",
        json_string(detail)
    )
}

/// One job summary line (used for both `GET /jobs` and `GET /jobs/N`).
fn summary_json(record: &JobRecord) -> String {
    format!(
        "{{\"id\":{},\"workload\":{},\"preset\":{},\"state\":{},\"attempts\":{},\"error\":{}}}",
        record.id,
        json_string(record.spec.workload.name()),
        json_string(&record.spec.preset),
        json_string(record.state.as_str()),
        record.attempts,
        record
            .error
            .as_deref()
            .map_or("null".to_owned(), json_string),
    )
}

/// Publishes `serve.json`: the atomically-rewritten live summary
/// `mce top <dir>` renders.
fn write_status(shared: &Arc<Shared>, addr: &str) {
    let jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut running: Option<u64> = None;
    for view in jobs.values() {
        *counts.entry(view.record.state.as_str()).or_insert(0) += 1;
        if view.record.state == JobState::Running {
            running = Some(view.record.id);
        }
    }
    let total = jobs.len();
    drop(jobs);
    let counts_json = counts
        .iter()
        .map(|(state, n)| format!("{}:{n}", json_string(state)))
        .collect::<Vec<_>>()
        .join(",");
    let body = format!(
        "{{\"serve_schema\":{SERVE_SCHEMA},\"pid\":{},\"addr\":{},\"draining\":{},\
         \"total\":{total},\"running\":{},\"jobs\":{{{counts_json}}}}}\n",
        std::process::id(),
        json_string(addr),
        shared.draining(),
        running.map_or("null".to_owned(), |id| id.to_string()),
    );
    let _ = atomic_write(status_path(&shared.cfg.dir), body.as_bytes());
}
