//! The durable write-ahead job journal (`jobs.jsonl`).
//!
//! Every job lifecycle transition is one self-contained, digest-framed
//! JSON line:
//!
//! ```text
//! {"mce_job":1,"digest":"<fnv128(event)>","event":{"Submitted":{...}}}
//! ```
//!
//! Appends are a single `write` of the whole line followed by an fsync,
//! so a crash leaves at worst one torn line at the tail. Replay parses
//! the file strictly and positionally — header prefix, 32 hex digest
//! digits, framed event body, digest verification, then the typed
//! parse — and stops at the *first* invalid line, dropping it and
//! everything after it (write-ahead-log tail-drop semantics). A flipped
//! bit or truncated write can therefore lose the damaged tail records,
//! but can never mis-parse into a different job spec or state.
//!
//! The in-memory job table is the [`fold`] of the surviving event
//! prefix; a daemon that replays the journal after a SIGKILL sees every
//! acknowledged job exactly as it was journaled.

use crate::checkpoint::fnv128;
use mce_appmodel::Workload;
use mce_error::MceError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Version of the journal line format, pinned into every line's
/// `"mce_job"` header key.
pub const JOURNAL_SCHEMA: u64 = 1;

/// One exploration job as submitted by a client. The workload is
/// inlined (the client resolves builtin names and files before
/// submitting), so the daemon never reads client-side paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The workload to explore, fully inlined.
    pub workload: Workload,
    /// Exploration scale (`fast` / `paper`), parsed at execution time.
    pub preset: String,
    /// Worker threads for the job's session (0 = the session default).
    pub threads: usize,
    /// Logical evaluation budget; 0 = unlimited.
    pub max_evals: u64,
    /// Phase-I architecture budget; 0 = unlimited.
    pub max_archs: usize,
    /// Per-attempt wall-clock deadline in milliseconds; 0 = none. A
    /// deadlined attempt stops at a safe point with its checkpoint kept,
    /// so retried attempts accumulate progress.
    pub deadline_ms: u64,
    /// Retries allowed after a failure or deadline timeout (crashes and
    /// drains are not charged).
    pub retry_budget: u32,
}

/// A job's current state, folded from the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for the executor (fresh, retrying, or recovered).
    Queued,
    /// Claimed by the executor.
    Running,
    /// Finished; the report is on disk and archived.
    Done,
    /// Exhausted its retries on errors.
    Failed,
    /// Exhausted its retries on deadline timeouts.
    TimedOut,
    /// Cancelled by a client.
    Canceled,
}

impl JobState {
    /// Stable lower-case label used in summaries and status files.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::TimedOut => "timed-out",
            JobState::Canceled => "canceled",
        }
    }

    /// Whether the state is terminal (no further transitions).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::TimedOut | JobState::Canceled
        )
    }
}

/// One journaled lifecycle transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobEvent {
    /// A client's job was accepted; the acknowledgement is sent only
    /// after this record is fsynced.
    Submitted {
        /// The job id (assigned by the daemon, strictly increasing).
        id: u64,
        /// The full spec, inlined.
        spec: JobSpec,
    },
    /// The executor picked the job up.
    Started {
        /// The job id.
        id: u64,
        /// 1-based attempt number. After a crash or drain the same
        /// attempt number can recur — recoveries are not charged.
        attempt: u32,
        /// The executing daemon's pid, for post-mortem correlation.
        pid: u32,
    },
    /// The job finished; its report is on disk.
    Done {
        /// The job id.
        id: u64,
    },
    /// Terminal failure (retry budget exhausted on errors).
    Failed {
        /// The job id.
        id: u64,
        /// The final error.
        error: String,
    },
    /// Terminal deadline timeout (retry budget exhausted on deadlines).
    TimedOut {
        /// The job id.
        id: u64,
    },
    /// A failed or timed-out attempt went back to the queue; one retry
    /// was charged.
    Retrying {
        /// The job id.
        id: u64,
        /// Why the attempt did not finish.
        reason: String,
    },
    /// A client cancelled the job.
    Canceled {
        /// The job id.
        id: u64,
    },
    /// A drain or crash recovery returned a running job to the queue
    /// *without* charging the retry budget.
    Requeued {
        /// The job id.
        id: u64,
    },
}

impl JobEvent {
    /// The id of the job this event belongs to.
    pub fn id(&self) -> u64 {
        match *self {
            JobEvent::Submitted { id, .. }
            | JobEvent::Started { id, .. }
            | JobEvent::Done { id }
            | JobEvent::Failed { id, .. }
            | JobEvent::TimedOut { id }
            | JobEvent::Retrying { id, .. }
            | JobEvent::Canceled { id }
            | JobEvent::Requeued { id } => id,
        }
    }
}

/// A job's folded state: the [`fold`] of its journal events.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job id.
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// Attempts charged against the retry budget so far.
    pub attempts: u32,
    /// The most recent error or timeout reason, if any.
    pub error: Option<String>,
}

// ---------------------------------------------------------------------------
// Line framing
// ---------------------------------------------------------------------------

const LINE_PREFIX: &str = "{\"mce_job\":1,\"digest\":\"";
const LINE_MID: &str = "\",\"event\":";

/// Frames one event as a digest-checked journal line (with trailing
/// newline).
///
/// # Errors
///
/// Returns [`MceError::Json`] if the event fails to serialize.
pub fn frame_line(event: &JobEvent) -> Result<String, MceError> {
    debug_assert_eq!(JOURNAL_SCHEMA, 1, "LINE_PREFIX pins the schema");
    let body = serde_json::to_string(event)
        .map_err(|e| MceError::json("serialize journal event", e.to_string()))?;
    Ok(format!(
        "{LINE_PREFIX}{}{LINE_MID}{body}}}\n",
        fnv128(body.as_bytes())
    ))
}

/// Parses one journal line (without its trailing newline) strictly and
/// positionally; any deviation — wrong prefix, malformed digest, digest
/// mismatch, trailing garbage, unparseable event — is an error.
///
/// # Errors
///
/// Returns [`MceError::Checkpoint`] describing the first violation.
pub fn parse_line(line: &str) -> Result<JobEvent, MceError> {
    let rest = line
        .strip_prefix(LINE_PREFIX)
        .ok_or_else(|| MceError::checkpoint("journal line: missing header"))?;
    let (digest, rest) = rest
        .split_at_checked(32)
        .ok_or_else(|| MceError::checkpoint("journal line: truncated digest"))?;
    if !digest.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(MceError::checkpoint("journal line: digest is not hex"));
    }
    let rest = rest
        .strip_prefix(LINE_MID)
        .ok_or_else(|| MceError::checkpoint("journal line: malformed frame"))?;
    let body = rest
        .strip_suffix('}')
        .ok_or_else(|| MceError::checkpoint("journal line: unterminated frame"))?;
    if fnv128(body.as_bytes()) != digest {
        return Err(MceError::checkpoint("journal line: digest mismatch"));
    }
    serde_json::from_str(body)
        .map_err(|e| MceError::checkpoint(format!("journal line: invalid event: {e}")))
}

/// Replays a journal file: the longest valid prefix of events, plus the
/// number of dropped (damaged-tail) lines. A missing file is an empty
/// journal.
///
/// # Errors
///
/// Returns [`MceError::Io`] only for real read failures — corruption is
/// handled by tail-dropping, not by erroring the daemon out.
pub fn replay(path: &Path) -> Result<(Vec<JobEvent>, usize), MceError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(MceError::io(format!("read journal {}", path.display()), e)),
    };
    let mut events = Vec::new();
    let lines: Vec<&str> = text.split('\n').filter(|line| !line.is_empty()).collect();
    for (i, line) in lines.iter().enumerate() {
        match parse_line(line) {
            Ok(event) => events.push(event),
            Err(_) => return Ok((events, lines.len() - i)),
        }
    }
    Ok((events, 0))
}

/// Folds an event sequence into the job table. Events referencing an id
/// never submitted are ignored (they can only follow journal damage
/// that replay already tail-dropped, but the fold stays total).
pub fn fold(events: &[JobEvent]) -> BTreeMap<u64, JobRecord> {
    let mut jobs: BTreeMap<u64, JobRecord> = BTreeMap::new();
    for event in events {
        if let JobEvent::Submitted { id, spec } = event {
            jobs.insert(
                *id,
                JobRecord {
                    id: *id,
                    spec: spec.clone(),
                    state: JobState::Queued,
                    attempts: 0,
                    error: None,
                },
            );
            continue;
        }
        let Some(job) = jobs.get_mut(&event.id()) else {
            continue;
        };
        match event {
            JobEvent::Submitted { .. } => unreachable!("handled above"),
            JobEvent::Started { attempt, .. } => {
                job.state = JobState::Running;
                job.attempts = *attempt;
            }
            JobEvent::Done { .. } => job.state = JobState::Done,
            JobEvent::Failed { error, .. } => {
                job.state = JobState::Failed;
                job.error = Some(error.clone());
            }
            JobEvent::TimedOut { .. } => {
                job.state = JobState::TimedOut;
                job.error = Some("deadline exceeded".to_owned());
            }
            JobEvent::Retrying { reason, .. } => {
                job.state = JobState::Queued;
                job.error = Some(reason.clone());
            }
            JobEvent::Canceled { .. } => job.state = JobState::Canceled,
            JobEvent::Requeued { .. } => {
                // Crash/drain recovery: back to the queue, the started
                // attempt uncharged.
                job.state = JobState::Queued;
                job.attempts = job.attempts.saturating_sub(1);
            }
        }
    }
    jobs
}

// ---------------------------------------------------------------------------
// The append handle
// ---------------------------------------------------------------------------

/// The daemon's append handle to `jobs.jsonl`: one fsynced write per
/// event, serialized by an internal mutex.
pub struct JobJournal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl JobJournal {
    /// Opens (creating if needed) the journal for appending.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Io`] when the file cannot be opened.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, MceError> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| MceError::io(format!("open journal {}", path.display()), e))?;
        Ok(JobJournal {
            path,
            file: Mutex::new(file),
        })
    }

    /// Appends one event: a single write of the framed line, flushed
    /// and fsynced before returning — the durability point every
    /// acknowledgement waits on.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Io`] when the write or sync fails; the
    /// journal may then hold a torn line, which replay tail-drops.
    pub fn append(&self, event: &JobEvent) -> Result<(), MceError> {
        let line = frame_line(event)?;
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        let ctx = || format!("append journal {}", self.path.display());
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .and_then(|()| file.sync_all())
            .map_err(|e| MceError::io(ctx(), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::benchmarks;

    fn spec() -> JobSpec {
        JobSpec {
            workload: benchmarks::vocoder(),
            preset: "fast".to_owned(),
            threads: 1,
            max_evals: 0,
            max_archs: 0,
            deadline_ms: 0,
            retry_budget: 2,
        }
    }

    #[test]
    fn events_round_trip_through_the_line_frame() {
        let events = [
            JobEvent::Submitted {
                id: 1,
                spec: spec(),
            },
            JobEvent::Started {
                id: 1,
                attempt: 1,
                pid: 123,
            },
            JobEvent::Retrying {
                id: 1,
                reason: "deadline".to_owned(),
            },
            JobEvent::Done { id: 1 },
        ];
        for event in &events {
            let line = frame_line(event).unwrap();
            assert!(line.ends_with('\n'));
            assert_eq!(&parse_line(line.trim_end()).unwrap(), event);
        }
    }

    #[test]
    fn replay_tail_drops_from_the_first_damaged_line() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mce_journal_{}.jsonl", std::process::id()));
        let good = [
            JobEvent::Submitted {
                id: 1,
                spec: spec(),
            },
            JobEvent::Started {
                id: 1,
                attempt: 1,
                pid: 9,
            },
            JobEvent::Done { id: 1 },
        ];
        let journal = JobJournal::open(&path).unwrap();
        for event in &good {
            journal.append(event).unwrap();
        }
        let (events, dropped) = replay(&path).unwrap();
        assert_eq!(events, good);
        assert_eq!(dropped, 0);

        // Corrupt the middle line: it and everything after it drop.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        lines[1] = lines[1].replace("\"attempt\"", "\"attackt\"");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let (events, dropped) = replay(&path).unwrap();
        assert_eq!(events, good[..1]);
        assert_eq!(dropped, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fold_tracks_the_lifecycle_and_uncharges_recoveries() {
        let events = vec![
            JobEvent::Submitted {
                id: 1,
                spec: spec(),
            },
            JobEvent::Started {
                id: 1,
                attempt: 1,
                pid: 9,
            },
            JobEvent::Requeued { id: 1 }, // crash recovery: uncharged
            JobEvent::Started {
                id: 1,
                attempt: 1,
                pid: 10,
            },
            JobEvent::Retrying {
                id: 1,
                reason: "deadline exceeded".to_owned(),
            },
            JobEvent::Started {
                id: 1,
                attempt: 2,
                pid: 10,
            },
            JobEvent::Done { id: 1 },
            JobEvent::Submitted {
                id: 2,
                spec: spec(),
            },
            JobEvent::Canceled { id: 2 },
        ];
        let jobs = fold(&events);
        assert_eq!(jobs[&1].state, JobState::Done);
        assert_eq!(jobs[&1].attempts, 2);
        assert_eq!(jobs[&2].state, JobState::Canceled);
        // A journal cut right after the first Started leaves the job
        // running; the daemon requeues it on startup.
        let jobs = fold(&events[..2]);
        assert_eq!(jobs[&1].state, JobState::Running);
        assert_eq!(jobs[&1].attempts, 1);
    }
}
