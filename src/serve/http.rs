//! A minimal, hardened HTTP/1.1 server edge over `std::net`.
//!
//! Just enough of the protocol for the job API — request line, a
//! handful of headers, `Content-Length` bodies, `Connection: close`
//! one-shot responses — with the hostile-input hardening a listening
//! daemon needs:
//!
//! * **Head cap** ([`HEAD_CAP`]): a request head larger than 8 KiB is
//!   answered `431` and dropped, however fast it arrives.
//! * **Body cap** ([`BODY_CAP`]): a declared or actual body beyond
//!   1 MiB is answered `413` without buffering it.
//! * **Read deadline**: the socket carries a read timeout; a client
//!   that dribbles bytes (slow-loris) or stalls mid-body is answered
//!   `408` and dropped instead of pinning the connection thread.
//! * **Typed errors**: every parse failure maps to a status and a JSON
//!   body — the daemon never panics on wire input.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum size of the request head (request line + headers).
pub const HEAD_CAP: usize = 8 * 1024;
/// Maximum size of a request body.
pub const BODY_CAP: usize = 1024 * 1024;
/// Default per-socket read deadline.
pub const READ_DEADLINE: Duration = Duration::from_secs(2);

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, upper-case as received.
    pub method: String,
    /// The request target (path only; no scheme/host handling).
    pub path: String,
    /// The body, present when `Content-Length` said so.
    pub body: Vec<u8>,
}

/// A request that could not be read, with the status line to answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// The HTTP status code to answer with.
    pub status: u16,
    /// Human-readable detail for the JSON error body.
    pub detail: String,
}

impl HttpError {
    fn new(status: u16, detail: impl Into<String>) -> Self {
        HttpError {
            status,
            detail: detail.into(),
        }
    }
}

/// The canonical reason phrase for the handful of statuses we emit.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Reads one request from `stream` under the caps and the given read
/// deadline.
///
/// # Errors
///
/// Returns the status-typed [`HttpError`] to answer with; the caller
/// writes it and closes.
pub fn read_request(stream: &mut TcpStream, deadline: Duration) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(deadline))
        .map_err(|e| HttpError::new(408, format!("cannot arm read deadline: {e}")))?;
    // Accumulate the head byte-wise up to the cap or the blank line.
    let mut head: Vec<u8> = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    let (head_len, mut spill) = loop {
        // The cap binds even when the head terminator arrives in the
        // same read chunk: a complete-but-oversized head is still 431.
        if let Some(end) = find_head_end(&head) {
            if end > HEAD_CAP {
                return Err(HttpError::new(
                    431,
                    format!("request head exceeds {HEAD_CAP} bytes"),
                ));
            }
            break (end, head.split_off(end));
        }
        if head.len() > HEAD_CAP {
            return Err(HttpError::new(
                431,
                format!("request head exceeds {HEAD_CAP} bytes"),
            ));
        }
        let n = stream.read(&mut buf).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                HttpError::new(408, "read deadline elapsed before the request head")
            } else {
                HttpError::new(400, format!("read failed: {e}"))
            }
        })?;
        if n == 0 {
            return Err(HttpError::new(
                400,
                "connection closed before the request head completed",
            ));
        }
        head.extend_from_slice(&buf[..n]);
    };
    let head_text = std::str::from_utf8(&head[..head_len])
        .map_err(|_| HttpError::new(400, "request head is not UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::new(400, "missing method"))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::new(400, "missing or relative request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(HttpError::new(400, "malformed request line"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header `{line}`")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::new(400, "unparseable Content-Length"))?;
        }
    }
    if content_length > BODY_CAP {
        return Err(HttpError::new(
            413,
            format!("declared body of {content_length} bytes exceeds {BODY_CAP}"),
        ));
    }
    // The body: whatever spilled past the head, then the remainder under
    // the same read deadline.
    spill.truncate(spill.len().min(content_length));
    let mut body = spill;
    while body.len() < content_length {
        let n = stream.read(&mut buf).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                HttpError::new(408, "read deadline elapsed mid-body")
            } else {
                HttpError::new(400, format!("body read failed: {e}"))
            }
        })?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-body"));
        }
        let want = content_length - body.len();
        body.extend_from_slice(&buf[..n.min(want)]);
    }
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
    })
}

/// Index one past the `\r\n\r\n` (or lone `\n\n`) head terminator.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| bytes.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// Writes one `Connection: close` response; errors are swallowed (the
/// peer may already be gone, and there is nothing left to salvage).
pub fn write_response(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason_phrase(status),
        body.len(),
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
}

/// Writes the JSON error body for `err`.
pub fn write_error(stream: &mut TcpStream, err: &HttpError) {
    let body = format!(
        "{{\"error\":{},\"status\":{}}}\n",
        super::json_string(&err.detail),
        err.status
    );
    write_response(stream, err.status, "application/json", &body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection_handles_both_conventions() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\nrest"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn reason_phrases_cover_the_statuses_we_emit() {
        for status in [200, 202, 400, 404, 405, 408, 409, 413, 431, 503] {
            assert_ne!(reason_phrase(status), "Error", "{status}");
        }
        assert_eq!(reason_phrase(599), "Error");
    }
}
