//! `mce serve`: a crash-tolerant exploration job service.
//!
//! The daemon accepts exploration jobs over a hand-rolled HTTP/1.1
//! endpoint (`POST /jobs`), persists every lifecycle transition to a
//! durable write-ahead journal ([`journal`], `jobs.jsonl`), and executes
//! jobs one at a time through [`ExplorationSession`] with a per-job
//! checkpoint file — so a daemon killed mid-job restarts with every
//! queued and running job intact and *resumes* the interrupted job
//! rather than recomputing it. The finished report is byte-identical
//! (via `mce diff`) to a plain `mce explore` run of the same spec.
//!
//! The robustness contract, in order of line of defense:
//!
//! 1. **Durable queue** — a job is acknowledged only after its
//!    `Submitted` record is flushed and fsynced to the journal; replay
//!    on startup folds the journal back into the job table, dropping
//!    only a torn tail record (each line is digest-framed).
//! 2. **Checkpointed execution** — each running job checkpoints like
//!    `mce explore --checkpoint`; a crash between checkpoints loses at
//!    most the uncommitted work, never the job.
//! 3. **Deterministic retries** — a failed or deadline-timed-out job
//!    re-queues with exponential backoff ([`crate::swarm::backoff_after`],
//!    the same schedule the swarm uses) until its retry budget is
//!    spent, then parks in a terminal `failed`/`timed-out` state.
//! 4. **Graceful drain** — SIGTERM/SIGINT stops admissions, lets the
//!    running job stop at a safe point (checkpoint kept), journals a
//!    `Requeued` record (the drain is not charged to the retry budget),
//!    and exits 0. No job is ever lost or duplicated.
//! 5. **Hostile clients** — the request parser caps head and body
//!    sizes, enforces read deadlines against slow-loris dribble, and
//!    answers malformed input with typed JSON errors instead of dying.
//!
//! [`ExplorationSession`]: crate::session::ExplorationSession

pub mod client;
pub mod daemon;
pub mod http;
pub mod journal;

pub use client::Client;
pub use daemon::{run_daemon, ServeConfig};
pub use journal::{replay, JobEvent, JobJournal, JobRecord, JobSpec, JobState, JOURNAL_SCHEMA};

use std::path::{Path, PathBuf};

/// Version of the serve-directory layout (journal header key
/// `"mce_job"`, status file key `"serve_schema"`).
pub const SERVE_SCHEMA: u64 = 1;

// ---------------------------------------------------------------------------
// Serve-directory layout
// ---------------------------------------------------------------------------

/// The write-ahead job journal: `<dir>/jobs.jsonl`.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("jobs.jsonl")
}

/// The daemon's pidfile: `<dir>/serve.pid`.
pub fn pid_path(dir: &Path) -> PathBuf {
    dir.join("serve.pid")
}

/// The bound listen address, written after the socket is live (so
/// `--addr 127.0.0.1:0` publishes the ephemeral port): `<dir>/serve.addr`.
pub fn addr_path(dir: &Path) -> PathBuf {
    dir.join("serve.addr")
}

/// The daemon's event log: `<dir>/serve.log`.
pub fn log_path(dir: &Path) -> PathBuf {
    dir.join("serve.log")
}

/// The daemon's live summary (`serve_schema` JSON, rendered by
/// `mce top <dir>`): `<dir>/serve.json`.
pub fn status_path(dir: &Path) -> PathBuf {
    dir.join("serve.json")
}

/// A job's crash-safety checkpoint: `<dir>/job-N.ck.json`.
pub fn job_checkpoint_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id}.ck.json"))
}

/// A completed job's run report: `<dir>/job-N.report.json`.
pub fn job_report_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id}.report.json"))
}

/// A running job's live-status file: `<dir>/job-N.status.json`.
pub fn job_status_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id}.status.json"))
}

/// Escapes `s` into a double-quoted JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
