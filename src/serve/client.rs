//! The client side of the job API: a tiny retrying HTTP/1.1 client used
//! by `mce submit` and `mce jobs`.
//!
//! Connects fresh per request (the daemon answers `Connection: close`),
//! retrying refused connections with the same [`backoff_after`]
//! schedule the daemon's executor uses — so a client racing a daemon
//! restart waits out the gap instead of erroring.

use super::journal::JobSpec;
use super::{addr_path, json_string};
use crate::swarm::backoff_after;
use mce_error::MceError;
use std::io::{Read, Write as _};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// Reads the daemon's published listen address from `<dir>/serve.addr`.
///
/// # Errors
///
/// Returns [`MceError::InvalidInput`] when no daemon has published an
/// address for `dir` (not running, or never started there).
pub fn read_addr(dir: &Path) -> Result<String, MceError> {
    let path = addr_path(dir);
    match std::fs::read_to_string(&path) {
        Ok(text) => Ok(text.trim().to_owned()),
        Err(_) => Err(MceError::invalid_input(format!(
            "no daemon address at {}; is `mce serve --dir {}` running?",
            path.display(),
            dir.display()
        ))),
    }
}

/// One response from the daemon.
#[derive(Debug, Clone)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The response body (JSON, per the API).
    pub body: String,
}

impl Response {
    /// Whether the daemon answered 2xx.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A job-API client bound to one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    /// Connection attempts before giving up (refused connections back
    /// off between tries).
    connect_tries: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
}

impl Client {
    /// A client for `addr` with the default retry posture: five
    /// connection attempts backing off 250 ms → 2 s.
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            connect_tries: 5,
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_millis(2000),
        }
    }

    /// A client that fails fast (single connection attempt). Used by
    /// tests probing "daemon is down" behavior.
    pub fn one_shot(addr: impl Into<String>) -> Self {
        Client {
            connect_tries: 1,
            ..Client::new(addr)
        }
    }

    /// Submits a job; on 200 returns the assigned job id.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::InvalidInput`] when the daemon refuses the
    /// job (draining, malformed spec) and [`MceError::Io`] on transport
    /// failures.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, MceError> {
        let body = serde_json::to_string(spec)
            .map_err(|e| MceError::json("serialize job spec", e.to_string()))?;
        let response = self.request("POST", "/jobs", Some(&body))?;
        if !response.is_ok() {
            return Err(MceError::invalid_input(format!(
                "daemon refused the job ({}): {}",
                response.status,
                response.body.trim()
            )));
        }
        parse_id_field(&response.body).ok_or_else(|| {
            MceError::invalid_input(format!(
                "daemon acknowledgement missing an id: {}",
                response.body.trim()
            ))
        })
    }

    /// `GET /jobs` — one summary JSON object per line.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Io`] on transport failures.
    pub fn list(&self) -> Result<String, MceError> {
        Ok(self.request("GET", "/jobs", None)?.body)
    }

    /// `GET /jobs/<id>` — one summary JSON object.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::InvalidInput`] for an unknown id and
    /// [`MceError::Io`] on transport failures.
    pub fn show(&self, id: u64) -> Result<String, MceError> {
        let response = self.request("GET", &format!("/jobs/{id}"), None)?;
        if !response.is_ok() {
            return Err(MceError::invalid_input(response.body.trim().to_owned()));
        }
        Ok(response.body)
    }

    /// `POST /jobs/<id>/cancel`.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::InvalidInput`] when the job is unknown or
    /// already terminal, [`MceError::Io`] on transport failures.
    pub fn cancel(&self, id: u64) -> Result<String, MceError> {
        let response = self.request("POST", &format!("/jobs/{id}/cancel"), None)?;
        if !response.is_ok() {
            return Err(MceError::invalid_input(response.body.trim().to_owned()));
        }
        Ok(response.body)
    }

    /// `GET /jobs/<id>/result` — the finished job's full run report.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::InvalidInput`] when the job is unknown or not
    /// done yet, [`MceError::Io`] on transport failures.
    pub fn result(&self, id: u64) -> Result<String, MceError> {
        let response = self.request("GET", &format!("/jobs/{id}/result"), None)?;
        if !response.is_ok() {
            return Err(MceError::invalid_input(response.body.trim().to_owned()));
        }
        Ok(response.body)
    }

    /// `GET /healthz`, as a plain up/down probe.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Io`] when the daemon is unreachable.
    pub fn healthz(&self) -> Result<Response, MceError> {
        self.request("GET", "/healthz", None)
    }

    /// One full request/response exchange on a fresh connection.
    fn request(&self, method: &str, path: &str, body: Option<&str>) -> Result<Response, MceError> {
        let mut stream = self.connect()?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        let ctx = || format!("request {method} {path} to {}", self.addr);
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .and_then(|()| stream.flush())
            .map_err(|e| MceError::io(ctx(), e))?;
        let mut raw = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .and_then(|()| stream.read_to_end(&mut raw))
            .map_err(|e| MceError::io(ctx(), e))?;
        parse_response(&raw).ok_or_else(|| {
            MceError::invalid_input(format!("unparseable response from {}", self.addr))
        })
    }

    /// Connects with refused-connection retries on the executor's
    /// backoff schedule.
    fn connect(&self) -> Result<TcpStream, MceError> {
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..self.connect_tries {
            std::thread::sleep(backoff_after(attempt, self.backoff_base, self.backoff_cap));
            match TcpStream::connect(&self.addr) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(MceError::io(
            format!(
                "connect to {} ({} attempt(s))",
                self.addr, self.connect_tries
            ),
            last.unwrap_or_else(|| std::io::Error::other("no connection attempts made")),
        ))
    }
}

/// Parses a raw HTTP/1.1 response into status + body. Lenient — the
/// daemon is trusted; this only needs the status line and body split.
fn parse_response(raw: &[u8]) -> Option<Response> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let body = String::from_utf8_lossy(&raw[head_end..]).into_owned();
    Some(Response { status, body })
}

/// Pulls the `"id"` field out of a submit acknowledgement.
fn parse_id_field(body: &str) -> Option<u64> {
    let idx = body.find("\"id\":")?;
    let digits: String = body[idx + 5..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Builds a [`JobSpec`] summary line for client-side display.
pub fn describe_spec(spec: &JobSpec) -> String {
    format!(
        "{{\"workload\":{},\"preset\":{},\"deadline_ms\":{},\"retries\":{}}}",
        json_string(spec.workload.name()),
        json_string(&spec.preset),
        spec.deadline_ms,
        spec.retry_budget
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parsing_splits_status_and_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 12\r\n\r\n{\"id\":7}\n";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "{\"id\":7}\n");
        assert!(response.is_ok());
        assert!(parse_response(b"garbage").is_none());
    }

    #[test]
    fn id_field_extraction_is_tolerant_of_spacing() {
        assert_eq!(parse_id_field("{\"id\":7,\"state\":\"queued\"}"), Some(7));
        assert_eq!(parse_id_field("{\"id\": 42}"), Some(42));
        assert_eq!(parse_id_field("{\"state\":\"queued\"}"), None);
    }
}
