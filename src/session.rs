//! The unified exploration session.
//!
//! [`ExplorationSession`] is the one-stop front end for the full
//! APEX → ConEx pipeline. It owns the resources both stages share —
//! the workload's block-compiled trace and the candidate-evaluation
//! cache — so the trace is compiled exactly once per session and every
//! evaluation is memoized across stages, scenarios and (with
//! [`ExplorationSession::eval_cache_file`]) across runs.
//!
//! ```
//! use memory_conex::prelude::*;
//!
//! let result = ExplorationSession::new(memory_conex::appmodel::benchmarks::vocoder())
//!     .preset(Preset::Fast)
//!     .run()
//!     .expect("exploration runs");
//! assert!(!result.conex.pareto_cost_latency().is_empty());
//! ```
//!
//! The staged entry points ([`ApexExplorer::explore`],
//! [`ConexExplorer::explore`]) remain available for driving the stages
//! by hand; the session produces bit-identical results — the shared
//! blocks and cache only remove redundant work.

use crate::checkpoint::{config_digest, Checkpoint};
use crate::report::RunReport;
use mce_apex::{ApexConfig, ApexExplorer, ApexResult};
use mce_appmodel::{TraceBlocks, Workload};
use mce_conex::design_point::workload_digest;
use mce_conex::eval_cache::DEFAULT_CAPACITY;
use mce_conex::explore::Phase1State;
use mce_conex::{CacheStats, ConexConfig, ConexExplorer, ConexResult, EvalCache, EvalEngine};
use mce_connlib::ConnectivityLibrary;
use mce_error::MceError;
use mce_sim::Preset;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Builder for — and runner of — one end-to-end exploration.
#[derive(Debug, Clone)]
pub struct ExplorationSession {
    workload: Workload,
    apex: ApexConfig,
    conex: ConexConfig,
    library: ConnectivityLibrary,
    cache_capacity: usize,
    eval_cache_file: Option<PathBuf>,
    checkpoint_file: Option<PathBuf>,
    checkpoint_every: usize,
}

/// Everything one session run produced.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Stage 1: the memory-modules exploration.
    pub apex: ApexResult,
    /// Stage 2: the connectivity exploration over the selected memory
    /// architectures.
    pub conex: ConexResult,
    /// Lifetime statistics of the session's evaluation cache. Nonzero
    /// hits on a fresh session mean candidates recurred within the run;
    /// with a warm [`ExplorationSession::eval_cache_file`], prior runs
    /// are answered from disk.
    pub cache_stats: CacheStats,
    /// The run's summary report: config + workload digest, funnel
    /// counters, cache effectiveness, pareto-front sizes,
    /// frontier-evolution samples and (when tracing is enabled) latency
    /// histograms. Serialize with [`RunReport::to_json`].
    pub report: RunReport,
    /// Whether this run resumed from a checkpoint
    /// ([`ExplorationSession::checkpoint_file`]). Resumed results are
    /// bit-identical to uninterrupted ones; this only records how the
    /// run got there.
    pub resumed: bool,
}

impl ExplorationSession {
    /// A session over `workload` at [`Preset::Fast`] scale with the
    /// default AMBA-style connectivity library.
    pub fn new(workload: Workload) -> Self {
        ExplorationSession {
            workload,
            apex: ApexConfig::preset(Preset::Fast),
            conex: ConexConfig::preset(Preset::Fast),
            library: ConnectivityLibrary::amba(),
            cache_capacity: DEFAULT_CAPACITY,
            eval_cache_file: None,
            checkpoint_file: None,
            checkpoint_every: 1,
        }
    }

    /// Sets both stage configurations to `preset`.
    #[must_use]
    pub fn preset(mut self, preset: Preset) -> Self {
        self.apex = ApexConfig::preset(preset);
        self.conex = ConexConfig::preset(preset);
        self
    }

    /// Replaces the APEX stage configuration.
    #[must_use]
    pub fn apex_config(mut self, config: ApexConfig) -> Self {
        self.apex = config;
        self
    }

    /// Replaces the ConEx stage configuration.
    #[must_use]
    pub fn conex_config(mut self, config: ConexConfig) -> Self {
        self.conex = config;
        self
    }

    /// Draws connectivity candidates from a custom library.
    #[must_use]
    pub fn library(mut self, library: ConnectivityLibrary) -> Self {
        self.library = library;
        self
    }

    /// Caps the evaluation cache at `capacity` resident entries.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Persists the evaluation cache across runs: loaded from `path`
    /// before exploring (a missing file is a cold start, not an error)
    /// and saved back after.
    #[must_use]
    pub fn eval_cache_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.eval_cache_file = Some(path.into());
        self
    }

    /// Worker threads for estimation and full simulation (0 = one per
    /// core). Results are identical for any thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.conex.threads = threads;
        self
    }

    /// Makes the run crash-safe: progress is checkpointed to `path`
    /// after each Phase-I architecture, and a run finding a valid
    /// checkpoint there resumes from it instead of starting over —
    /// producing results bit-identical to an uninterrupted run. The
    /// checkpoint is deleted when the run completes.
    ///
    /// A checkpoint from a different workload or configuration (other
    /// than the thread count) is rejected with [`MceError::Checkpoint`];
    /// a corrupt or truncated one likewise — never silently ignored,
    /// never silently wrong. While resuming, the evaluation cache is
    /// restored from the checkpoint and any
    /// [`eval_cache_file`](ExplorationSession::eval_cache_file) is not
    /// re-read (it is still saved at the end).
    #[must_use]
    pub fn checkpoint_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_file = Some(path.into());
        self
    }

    /// Checkpoints every `n` completed Phase-I architectures instead of
    /// every one (the last architecture always checkpoints). Values
    /// below 1 mean 1.
    #[must_use]
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = n.max(1);
        self
    }

    /// Runs APEX then ConEx over the shared trace and cache, resuming
    /// from a [`checkpoint_file`](ExplorationSession::checkpoint_file)
    /// when one is present.
    ///
    /// # Errors
    ///
    /// Returns an [`MceError`] if a configured
    /// [`eval_cache_file`](ExplorationSession::eval_cache_file) exists
    /// but cannot be parsed or written back, if a checkpoint exists but
    /// is corrupt or belongs to a different run
    /// ([`MceError::Checkpoint`]), if a checkpoint cannot be written, or
    /// if an evaluation worker panics twice on the same candidate
    /// ([`MceError::WorkerPanic`]).
    pub fn run(&self) -> Result<SessionResult, MceError> {
        let start = Instant::now();
        let w_digest = workload_digest(&self.workload).to_hex();
        let c_digest = config_digest(&self.apex, &self.conex, &self.library, self.cache_capacity);
        let resume = match &self.checkpoint_file {
            Some(path) if path.exists() => {
                let ck = Checkpoint::load(path)?;
                ck.ensure_matches(&w_digest, &c_digest)?;
                Some(ck)
            }
            _ => None,
        };
        // The run's cache: restored from the checkpoint when resuming —
        // exact FIFO order and lifetime stats, so eviction behavior and
        // the report's cache section continue as if never interrupted.
        let cache = Arc::new(match (&resume, &self.eval_cache_file) {
            (Some(ck), _) => {
                let cache =
                    EvalCache::from_entries_fifo(ck.entries.iter().copied(), self.cache_capacity);
                cache.restore_stats(ck.cache_stats);
                cache
            }
            (None, Some(path)) if path.exists() => EvalCache::load(path, self.cache_capacity)?,
            _ => EvalCache::with_capacity(self.cache_capacity),
        });
        // One compilation serves both stages: blocks compiled at the
        // longer of the two trace lengths replay any shorter prefix.
        let blocks = Arc::new(TraceBlocks::compile(
            &self.workload,
            self.apex.trace_len.max(self.conex.trace_len),
        ));
        let apex = ApexExplorer::new(self.apex.clone()).explore_with_blocks(&self.workload, &blocks);
        let engine =
            EvalEngine::with_blocks(&self.workload, blocks.clone()).with_cache(cache.clone());
        let explorer = ConexExplorer::with_library(self.conex.clone(), self.library.clone());
        let mem_archs = apex.selected();
        let state = match &resume {
            Some(ck) => {
                // Design points are not persisted; replay the completed
                // architectures through a *scratch* copy of the restored
                // cache (all hits, so this is cheap) and leave the real
                // cache exactly as checkpointed.
                let scratch = Arc::new(EvalCache::from_entries_fifo(
                    ck.entries.iter().copied(),
                    self.cache_capacity,
                ));
                let scratch_engine =
                    EvalEngine::with_blocks(&self.workload, blocks).with_cache(scratch);
                let state = explorer.phase1_partial(&scratch_engine, &mem_archs, ck.archs_done)?;
                if state.frontier_evolution != ck.frontier {
                    return Err(MceError::checkpoint(
                        "replayed frontier diverges from the checkpointed one — the \
                         checkpoint does not describe this run",
                    ));
                }
                // The replay polluted the global counters; overwrite
                // them with the checkpointed values so totals continue
                // exactly where the interrupted run left off.
                for (name, value) in &ck.counters {
                    mce_obs::counter_restore(name, *value);
                }
                for (name, value) in &ck.gauges {
                    mce_obs::gauge_restore(name, *value);
                }
                state
            }
            None => Phase1State::default(),
        };
        let resumed = resume.is_some();
        let every = self.checkpoint_every;
        let total = mem_archs.len();
        let ck_path = self.checkpoint_file.clone();
        let ck_cache = cache.clone();
        let mut after_arch = move |s: &Phase1State| -> Result<(), MceError> {
            if let Some(path) = &ck_path {
                if s.archs_done % every == 0 || s.archs_done == total {
                    Checkpoint::capture(w_digest.clone(), c_digest.clone(), s, &ck_cache)
                        .save(path)?;
                }
            }
            Ok(())
        };
        let conex =
            explorer.explore_with_engine_resumable(&engine, mem_archs, state, &mut after_arch)?;
        // The run completed; the checkpoint has served its purpose.
        if let Some(path) = &self.checkpoint_file {
            std::fs::remove_file(path).ok();
        }
        if let Some(path) = &self.eval_cache_file {
            cache.save(path)?;
        }
        let cache_stats = cache.stats();
        let report = RunReport::collect(
            &self.workload,
            &self.apex,
            &self.conex,
            self.cache_capacity,
            &cache_stats,
            &conex,
            start.elapsed().as_secs_f64(),
            resumed,
        );
        Ok(SessionResult {
            apex,
            conex,
            cache_stats,
            report,
            resumed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::benchmarks;

    #[test]
    fn session_matches_staged_pipeline() {
        let w = benchmarks::vocoder();
        let session = ExplorationSession::new(w.clone()).preset(Preset::Fast);
        let result = session.run().unwrap();
        let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
        let conex = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
            .explore(&w, apex.selected())
            .unwrap();
        assert_eq!(result.apex, apex);
        assert_eq!(
            result.conex.simulated().len(),
            conex.simulated().len(),
            "same shortlist"
        );
        for (a, b) in result.conex.simulated().iter().zip(conex.simulated()) {
            assert_eq!(a.metrics, b.metrics, "bit-identical metrics");
        }
    }

    #[test]
    fn warm_cache_file_round_trips() {
        let path = std::env::temp_dir().join(format!("mce_session_{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();
        let session = ExplorationSession::new(benchmarks::vocoder())
            .preset(Preset::Fast)
            .eval_cache_file(&path);
        let cold = session.run().unwrap();
        let warm = session.run().unwrap();
        std::fs::remove_file(&path).ok();
        assert!(
            warm.cache_stats.hits > cold.cache_stats.hits,
            "second run answers from the spill: {:?} vs {:?}",
            warm.cache_stats,
            cold.cache_stats
        );
        for (a, b) in cold.conex.simulated().iter().zip(warm.conex.simulated()) {
            assert_eq!(a.metrics, b.metrics, "warm cache never changes results");
        }
    }

    #[test]
    fn resume_from_a_mid_run_checkpoint_matches_uninterrupted() {
        let w = benchmarks::vocoder();
        let ck_path =
            std::env::temp_dir().join(format!("mce_resume_{}.json", std::process::id()));
        std::fs::remove_file(&ck_path).ok();
        let session = ExplorationSession::new(w.clone()).preset(Preset::Fast);
        let clean = session.run().unwrap();
        assert!(!clean.resumed);
        // Hand-build the checkpoint a run killed after its first
        // architecture would have left behind, then resume from it.
        let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
        let cache = Arc::new(EvalCache::with_capacity(DEFAULT_CAPACITY));
        let engine = EvalEngine::new(&w, ConexConfig::preset(Preset::Fast).trace_len)
            .with_cache(cache.clone());
        let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));
        let state = explorer
            .phase1_partial(&engine, &apex.selected(), 1)
            .unwrap();
        Checkpoint::capture(
            workload_digest(&w).to_hex(),
            config_digest(
                &ApexConfig::preset(Preset::Fast),
                &ConexConfig::preset(Preset::Fast),
                &ConnectivityLibrary::amba(),
                DEFAULT_CAPACITY,
            ),
            &state,
            &cache,
        )
        .save(&ck_path)
        .unwrap();
        let resumed = session.clone().checkpoint_file(&ck_path).run().unwrap();
        assert!(resumed.resumed);
        assert!(!ck_path.exists(), "checkpoint consumed on success");
        assert_eq!(clean.conex.estimated(), resumed.conex.estimated());
        assert_eq!(clean.conex.simulated(), resumed.conex.simulated());
        assert_eq!(clean.cache_stats, resumed.cache_stats);
        // The acceptance bar: byte-identical reports up to wall_clock.
        assert_eq!(
            RunReport::stable_json_prefix(&clean.report.to_json()),
            RunReport::stable_json_prefix(&resumed.report.to_json())
        );
    }

    #[test]
    fn foreign_checkpoint_is_rejected() {
        let ck_path =
            std::env::temp_dir().join(format!("mce_foreign_{}.json", std::process::id()));
        std::fs::remove_file(&ck_path).ok();
        // A valid checkpoint taken under a different workload…
        let other = benchmarks::compress();
        let cache = EvalCache::with_capacity(DEFAULT_CAPACITY);
        Checkpoint::capture(
            workload_digest(&other).to_hex(),
            "not the real config digest".to_owned(),
            &Phase1State::default(),
            &cache,
        )
        .save(&ck_path)
        .unwrap();
        // …must not be resumed by a vocoder session.
        let err = ExplorationSession::new(benchmarks::vocoder())
            .checkpoint_file(&ck_path)
            .run()
            .unwrap_err();
        assert!(matches!(err, MceError::Checkpoint { .. }), "{err}");
        // A corrupt checkpoint is an error too, not a silent cold start.
        std::fs::write(&ck_path, "not a checkpoint").unwrap();
        let err = ExplorationSession::new(benchmarks::vocoder())
            .checkpoint_file(&ck_path)
            .run()
            .unwrap_err();
        std::fs::remove_file(&ck_path).ok();
        assert!(matches!(err, MceError::Checkpoint { .. }), "{err}");
    }

    #[test]
    fn corrupt_cache_file_is_an_error() {
        let path = std::env::temp_dir().join(format!("mce_corrupt_{}.json", std::process::id()));
        std::fs::write(&path, "{definitely not a spill").unwrap();
        let err = ExplorationSession::new(benchmarks::vocoder())
            .eval_cache_file(&path)
            .run()
            .unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, MceError::Json { .. }), "{err}");
    }
}
