//! The unified exploration session.
//!
//! [`ExplorationSession`] is the one-stop front end for the full
//! APEX → ConEx pipeline. It owns the resources both stages share —
//! the workload's block-compiled trace and the candidate-evaluation
//! cache — so the trace is compiled exactly once per session and every
//! evaluation is memoized across stages, scenarios and (with
//! [`ExplorationSession::eval_cache_file`]) across runs.
//!
//! ```
//! use memory_conex::prelude::*;
//!
//! let result = ExplorationSession::new(memory_conex::appmodel::benchmarks::vocoder())
//!     .preset(Preset::Fast)
//!     .run()
//!     .expect("exploration runs");
//! assert!(!result.conex.pareto_cost_latency().is_empty());
//! ```
//!
//! The staged entry points ([`ApexExplorer::explore`],
//! [`ConexExplorer::explore`]) remain available for driving the stages
//! by hand; the session produces bit-identical results — the shared
//! blocks and cache only remove redundant work.

use crate::checkpoint::{config_digest, Checkpoint};
use crate::live::LiveShared;
use crate::report::RunReport;
use mce_apex::{ApexConfig, ApexExplorer, ApexResult};
use mce_appmodel::{TraceBlocks, Workload};
use mce_budget::{Bounds, CancelToken, EvalBudget, Watchdog};
use mce_conex::design_point::workload_digest;
use mce_conex::eval_cache::DEFAULT_CAPACITY;
use mce_conex::explore::Phase1State;
use mce_conex::{
    ArchSlice, CacheStats, ConexConfig, ConexExplorer, ConexResult, EvalCache, EvalEngine,
};
use mce_connlib::ConnectivityLibrary;
use mce_error::{atomic_write, sweep_stale_tmps, MceError};
use mce_sim::Preset;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builder for — and runner of — one end-to-end exploration.
///
/// The budget/deadline knobs ([`max_evals`](ExplorationSession::max_evals),
/// [`max_archs`](ExplorationSession::max_archs),
/// [`deadline`](ExplorationSession::deadline),
/// [`candidate_timeout`](ExplorationSession::candidate_timeout),
/// [`watch_interrupt`](ExplorationSession::watch_interrupt)) bound the run
/// without changing what it computes: a bounded run stops at the next
/// safe point, reports *why*
/// ([`ConexResult::stop_reason`](mce_conex::ConexResult::stop_reason)),
/// force-writes its checkpoint (when configured) and still returns a
/// valid, resumable [`SessionResult`]. None of them enter the
/// configuration digest, so a bounded run resumes an unbounded run's
/// checkpoint and vice versa.
#[derive(Debug, Clone)]
pub struct ExplorationSession {
    workload: Workload,
    apex: ApexConfig,
    conex: ConexConfig,
    library: ConnectivityLibrary,
    cache_capacity: usize,
    eval_cache_file: Option<PathBuf>,
    checkpoint_file: Option<PathBuf>,
    checkpoint_every: usize,
    max_evals: Option<u64>,
    max_archs: Option<usize>,
    deadline: Option<Duration>,
    candidate_timeout: Option<Duration>,
    watch_interrupt: bool,
    cancel_token: Option<CancelToken>,
    live_status_file: Option<PathBuf>,
    live_every: Duration,
    metrics_out: Option<PathBuf>,
    explain: bool,
    arch_range: Option<(usize, usize)>,
    capture_slices: bool,
}

/// Everything one session run produced.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Stage 1: the memory-modules exploration.
    pub apex: ApexResult,
    /// Stage 2: the connectivity exploration over the selected memory
    /// architectures.
    pub conex: ConexResult,
    /// Lifetime statistics of the session's evaluation cache. Nonzero
    /// hits on a fresh session mean candidates recurred within the run;
    /// with a warm [`ExplorationSession::eval_cache_file`], prior runs
    /// are answered from disk.
    pub cache_stats: CacheStats,
    /// The run's summary report: config + workload digest, funnel
    /// counters, cache effectiveness, pareto-front sizes,
    /// frontier-evolution samples and (when tracing is enabled) latency
    /// histograms. Serialize with [`RunReport::to_json`].
    pub report: RunReport,
    /// Whether this run resumed from a checkpoint
    /// ([`ExplorationSession::checkpoint_file`]). Resumed results are
    /// bit-identical to uninterrupted ones; this only records how the
    /// run got there.
    pub resumed: bool,
    /// Per-architecture Phase-I slices, captured when
    /// [`ExplorationSession::capture_slices`] is on (`None` otherwise).
    /// Each slice carries its *global* architecture index — offset by
    /// the start of an [`ExplorationSession::arch_range`] — so slices
    /// from ranged runs over disjoint ranges reassemble into the serial
    /// Phase-I state with [`mce_conex::merge_arch_slices`]. A resumed
    /// run re-captures the replayed architectures' slices from the
    /// restored cache, so the set is complete either way.
    pub arch_slices: Option<Vec<ArchSlice>>,
}

impl ExplorationSession {
    /// A session over `workload` at [`Preset::Fast`] scale with the
    /// default AMBA-style connectivity library.
    pub fn new(workload: Workload) -> Self {
        ExplorationSession {
            workload,
            apex: ApexConfig::preset(Preset::Fast),
            conex: ConexConfig::preset(Preset::Fast),
            library: ConnectivityLibrary::amba(),
            cache_capacity: DEFAULT_CAPACITY,
            eval_cache_file: None,
            checkpoint_file: None,
            checkpoint_every: 1,
            max_evals: None,
            max_archs: None,
            deadline: None,
            candidate_timeout: None,
            watch_interrupt: false,
            cancel_token: None,
            live_status_file: None,
            live_every: Duration::from_millis(500),
            metrics_out: None,
            explain: false,
            arch_range: None,
            capture_slices: false,
        }
    }

    /// Sets both stage configurations to `preset`.
    #[must_use]
    pub fn preset(mut self, preset: Preset) -> Self {
        self.apex = ApexConfig::preset(preset);
        self.conex = ConexConfig::preset(preset);
        self
    }

    /// Replaces the APEX stage configuration.
    #[must_use]
    pub fn apex_config(mut self, config: ApexConfig) -> Self {
        self.apex = config;
        self
    }

    /// Replaces the ConEx stage configuration.
    #[must_use]
    pub fn conex_config(mut self, config: ConexConfig) -> Self {
        self.conex = config;
        self
    }

    /// Draws connectivity candidates from a custom library.
    #[must_use]
    pub fn library(mut self, library: ConnectivityLibrary) -> Self {
        self.library = library;
        self
    }

    /// Caps the evaluation cache at `capacity` resident entries.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Persists the evaluation cache across runs: loaded from `path`
    /// before exploring (a missing file is a cold start, not an error)
    /// and saved back after.
    #[must_use]
    pub fn eval_cache_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.eval_cache_file = Some(path.into());
        self
    }

    /// Worker threads for estimation and full simulation (0 = one per
    /// core). Results are identical for any thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.conex.threads = threads;
        self
    }

    /// Makes the run crash-safe: progress is checkpointed to `path`
    /// after each Phase-I architecture, and a run finding a valid
    /// checkpoint there resumes from it instead of starting over —
    /// producing results bit-identical to an uninterrupted run. The
    /// checkpoint is deleted when the run completes.
    ///
    /// A checkpoint from a different workload or configuration (other
    /// than the thread count) is rejected with [`MceError::Checkpoint`];
    /// a corrupt or truncated one likewise — never silently ignored,
    /// never silently wrong. While resuming, the evaluation cache is
    /// restored from the checkpoint and any
    /// [`eval_cache_file`](ExplorationSession::eval_cache_file) is not
    /// re-read (it is still saved at the end).
    #[must_use]
    pub fn checkpoint_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_file = Some(path.into());
        self
    }

    /// Checkpoints every `n` completed Phase-I architectures instead of
    /// every one (the last architecture always checkpoints). Values
    /// below 1 mean 1.
    #[must_use]
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = n.max(1);
        self
    }

    /// Caps the run at `n` committed candidate evaluations (cache hits,
    /// coalesced twins and fresh simulations all count one). The budget
    /// is consumed in canonical probe order, so where it runs out — and
    /// therefore everything the run commits — is bit-identical across
    /// thread counts, cache state and checkpoint resumption. A resumed
    /// run re-consumes the units its replayed architectures consumed, so
    /// pass the same `n` to continue a budgeted run faithfully.
    #[must_use]
    pub fn max_evals(mut self, n: u64) -> Self {
        self.max_evals = Some(n);
        self
    }

    /// Caps Phase I at `n` memory architectures (checked at architecture
    /// boundaries; deterministic like
    /// [`max_evals`](ExplorationSession::max_evals)).
    #[must_use]
    pub fn max_archs(mut self, n: usize) -> Self {
        self.max_archs = Some(n);
        self
    }

    /// Stops the run at the next safe point once `d` of wall-clock time
    /// has elapsed (measured from [`run`](ExplorationSession::run)). The
    /// run still checkpoints and reports; only *where* it stops is
    /// nondeterministic.
    #[must_use]
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Bounds each candidate's simulation at `d` of wall-clock time. A
    /// candidate over the limit degrades gracefully instead of wedging
    /// the run: a Phase-II point falls back to its Phase-I estimate, a
    /// Phase-I candidate is dropped. Degraded values are annotated in
    /// the result and never enter the evaluation cache.
    #[must_use]
    pub fn candidate_timeout(mut self, d: Duration) -> Self {
        self.candidate_timeout = Some(d);
        self
    }

    /// Makes the run stop cooperatively on SIGINT/SIGTERM (requires the
    /// process to have installed the flag-raising handlers —
    /// [`mce_budget::install_termination_handlers`] — or to raise the
    /// flag itself via [`mce_budget::raise_interrupt`]). Off by default:
    /// library users opt in, the CLI turns it on.
    #[must_use]
    pub fn watch_interrupt(mut self, watch: bool) -> Self {
        self.watch_interrupt = watch;
        self
    }

    /// Runs under a caller-owned [`CancelToken`] instead of building one
    /// from [`deadline`](ExplorationSession::deadline) /
    /// [`watch_interrupt`](ExplorationSession::watch_interrupt) — the
    /// embedding (e.g. the `mce serve` job executor) encodes its own
    /// deadline and interrupt policy in the token and can trip it
    /// externally (job cancellation, drain). When set, this token wins
    /// over both of those knobs. Truncation behaves exactly as with the
    /// built-in token: stop at a safe point, force-checkpoint, return a
    /// valid resumable result.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel_token = Some(token);
        self
    }

    /// Continuously publishes a live-status JSON snapshot
    /// ([`crate::live::LIVE_SCHEMA`]) to `path` while the run executes:
    /// written atomically at every committed Phase-I architecture and on
    /// the wall-clock cadence of
    /// [`live_every`](ExplorationSession::live_every), then finalized
    /// with the run's status and stop reason. Watch it with `mce top`.
    /// Publishing is best-effort and read-only — a failed write never
    /// fails the run, and results are bit-identical with it on or off.
    #[must_use]
    pub fn live_status_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.live_status_file = Some(path.into());
        self
    }

    /// Wall-clock sampling cadence for the background time-series
    /// sampler and live-status publisher (default 500 ms, minimum 10 ms).
    #[must_use]
    pub fn live_every(mut self, d: Duration) -> Self {
        self.live_every = d.max(Duration::from_millis(10));
        self
    }

    /// Writes the end-of-run counter/gauge/histogram registries to
    /// `path` as OpenMetrics text
    /// ([`crate::live::openmetrics_from_registries`]). Families are
    /// empty unless tracing is enabled for the run.
    #[must_use]
    pub fn metrics_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_out = Some(path.into());
        self
    }

    /// Captures frontier provenance ([`mce_conex::ArchProvenance`]):
    /// why each Phase-I point survived or was pruned, and where its
    /// metrics came from. Results are bit-identical with it on or off;
    /// only the report gains a `provenance` section. In a resumed run
    /// the replayed architectures are answered entirely from the
    /// restored cache, so their points all carry the `cache-hit` origin.
    #[must_use]
    pub fn explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// Restricts Phase I to the half-open sub-range `start..end` of
    /// APEX's selected architectures (global exploration order). The
    /// session still runs APEX itself — selection is deterministic, so
    /// every ranged session over the same workload and configuration
    /// sees the same global order — then explores only its slice
    /// through both phases. This is the unit of work a swarm lease
    /// claims: disjoint ranges partition the run, and their captured
    /// [`ArchSlice`]s (see
    /// [`capture_slices`](ExplorationSession::capture_slices)) merge
    /// back into the serial result.
    ///
    /// The range is appended to the configuration digest, so a ranged
    /// checkpoint can only resume the same lease — never leak into a
    /// different range or a whole-run session.
    ///
    /// An empty or out-of-bounds range fails
    /// [`run`](ExplorationSession::run) with [`MceError::InvalidInput`].
    #[must_use]
    pub fn arch_range(mut self, start: usize, end: usize) -> Self {
        self.arch_range = Some((start, end));
        self
    }

    /// Captures each Phase-I architecture's estimate cloud and local
    /// shortlist as an [`ArchSlice`] in
    /// [`SessionResult::arch_slices`]. Off by default (the slices
    /// duplicate data already in the result); swarm workers turn it on
    /// to ship their shard back to the supervisor.
    #[must_use]
    pub fn capture_slices(mut self, capture: bool) -> Self {
        self.capture_slices = capture;
        self
    }

    /// Runs APEX then ConEx over the shared trace and cache, resuming
    /// from a [`checkpoint_file`](ExplorationSession::checkpoint_file)
    /// when one is present.
    ///
    /// # Errors
    ///
    /// Returns an [`MceError`] if a configured
    /// [`eval_cache_file`](ExplorationSession::eval_cache_file) exists
    /// but cannot be parsed or written back, if a checkpoint exists but
    /// is corrupt or belongs to a different run
    /// ([`MceError::Checkpoint`]), if a checkpoint cannot be written, or
    /// if an evaluation worker panics twice on the same candidate
    /// ([`MceError::WorkerPanic`]).
    pub fn run(&self) -> Result<SessionResult, MceError> {
        let start = Instant::now();
        // Clear temp files abandoned by crashed earlier runs from every
        // directory this run's atomic writers will target.
        for path in [
            &self.checkpoint_file,
            &self.eval_cache_file,
            &self.live_status_file,
            &self.metrics_out,
        ]
        .into_iter()
        .flatten()
        {
            sweep_stale_tmps(path);
        }
        let w_digest = workload_digest(&self.workload).to_hex();
        let mut c_digest =
            config_digest(&self.apex, &self.conex, &self.library, self.cache_capacity);
        if let Some((lo, hi)) = self.arch_range {
            // Scope checkpoints (and swarm shards) to the lease: a
            // ranged checkpoint must never resume a different range.
            c_digest.push_str(&format!("|range:{lo}-{hi}"));
        }
        let resume = match &self.checkpoint_file {
            Some(path) if path.exists() => {
                let ck = Checkpoint::load(path)?;
                ck.ensure_matches(&w_digest, &c_digest)?;
                Some(ck)
            }
            _ => None,
        };
        // The run's cache: restored from the checkpoint when resuming —
        // exact FIFO order and lifetime stats, so eviction behavior and
        // the report's cache section continue as if never interrupted.
        let cache = Arc::new(match (&resume, &self.eval_cache_file) {
            (Some(ck), _) => {
                let cache =
                    EvalCache::from_entries_fifo(ck.entries.iter().copied(), self.cache_capacity);
                cache.restore_stats(ck.cache_stats);
                cache
            }
            (None, Some(path)) if path.exists() => EvalCache::load(path, self.cache_capacity)?,
            _ => EvalCache::with_capacity(self.cache_capacity),
        });
        // One compilation serves both stages: blocks compiled at the
        // longer of the two trace lengths replay any shorter prefix.
        let blocks = Arc::new(TraceBlocks::compile(
            &self.workload,
            self.apex.trace_len.max(self.conex.trace_len),
        ));
        let apex =
            ApexExplorer::new(self.apex.clone()).explore_with_blocks(&self.workload, &blocks);
        // The run's bounds. The logical budget is created here — fresh
        // per run() call — and shared with the resume replay below, so a
        // resumed run re-consumes exactly the units its replayed
        // architectures consumed and then continues with what is left,
        // bit-identical to a never-interrupted budgeted run.
        let budget = self.max_evals.map(|n| Arc::new(EvalBudget::limited(n)));
        let bounds = Bounds {
            token: match &self.cancel_token {
                Some(token) => token.clone(),
                None if self.deadline.is_some() || self.watch_interrupt => {
                    CancelToken::bounded(self.deadline, self.watch_interrupt)
                }
                None => CancelToken::never(),
            },
            budget: budget.clone(),
            max_archs: self.max_archs,
            watchdog: self.candidate_timeout.map(|t| Arc::new(Watchdog::start(t))),
        };
        let engine = EvalEngine::with_blocks(&self.workload, blocks.clone())
            .with_cache(cache.clone())
            .with_bounds(bounds);
        let explorer = ConexExplorer::with_library(self.conex.clone(), self.library.clone())
            .with_explain(self.explain);
        let mem_archs = apex.selected();
        let (range_base, mem_archs) = match self.arch_range {
            Some((lo, hi)) => {
                if lo >= hi || hi > mem_archs.len() {
                    return Err(MceError::invalid_input(format!(
                        "architecture range {lo}..{hi} is not a non-empty sub-range of \
                         the {} selected architectures",
                        mem_archs.len()
                    )));
                }
                (lo, mem_archs[lo..hi].to_vec())
            }
            None => (0, mem_archs),
        };
        // Slice capture: each committed architecture's contribution is
        // the delta the boundary state grew by since the previous one.
        let mut slices: Option<Vec<ArchSlice>> = self.capture_slices.then(Vec::new);
        let mut seen = (0usize, 0usize); // (estimated, shortlist) committed so far
        let state = match &resume {
            Some(ck) => {
                // Design points are not persisted; replay the completed
                // architectures through a *scratch* copy of the restored
                // cache (all hits, so this is cheap) and leave the real
                // cache exactly as checkpointed. The replay engine
                // carries only the shared logical budget — deadlines,
                // SIGINT and the watchdog never interrupt a replay.
                let scratch = Arc::new(EvalCache::from_entries_fifo(
                    ck.entries.iter().copied(),
                    self.cache_capacity,
                ));
                let scratch_engine = EvalEngine::with_blocks(&self.workload, blocks)
                    .with_cache(scratch)
                    .with_bounds(Bounds {
                        budget: budget.clone(),
                        ..Bounds::none()
                    });
                let state = explorer.phase1_partial_with(
                    &scratch_engine,
                    &mem_archs,
                    ck.archs_done,
                    &mut |s| {
                        if let Some(out) = &mut slices {
                            out.push(ArchSlice {
                                arch: range_base + s.archs_done - 1,
                                estimated: s.estimated[seen.0..].to_vec(),
                                shortlist: s.shortlist[seen.1..].to_vec(),
                            });
                        }
                        seen = (s.estimated.len(), s.shortlist.len());
                        Ok(())
                    },
                )?;
                if state.frontier_evolution != ck.frontier {
                    return Err(MceError::checkpoint(
                        "replayed frontier diverges from the checkpointed one — the \
                         checkpoint does not describe this run",
                    ));
                }
                // The replay polluted the global counters; overwrite
                // them with the checkpointed values so totals continue
                // exactly where the interrupted run left off.
                for (name, value) in &ck.counters {
                    mce_obs::counter_restore(name, *value);
                }
                for (name, value) in &ck.gauges {
                    mce_obs::gauge_restore(name, *value);
                }
                state
            }
            None => Phase1State::default(),
        };
        let resumed = resume.is_some();
        let every = self.checkpoint_every;
        let total = mem_archs.len();
        let ck_path = self.checkpoint_file.clone();
        let ck_cache = cache.clone();
        // Live telemetry: shared progress state behind the live-status
        // file, plus one background sampler feeding the wall-clock
        // time-series channel (and republishing the status file on its
        // cadence). Strictly read-only with respect to the exploration,
        // and publish failures never fail the run.
        let live = self.live_status_file.as_ref().map(|path| {
            let shared = Arc::new(LiveShared::new(
                self.workload.name(),
                self.conex.threads,
                self.max_evals,
                self.deadline.map(|d| d.as_secs_f64()),
                budget.clone(),
            ));
            shared.set_archs_total(total);
            shared.record_arch(&state);
            shared.publish(path);
            (path.clone(), shared)
        });
        let sampler = if mce_obs::tracing_enabled() || live.is_some() {
            let hook: Box<dyn Fn() + Send> = match &live {
                Some((path, shared)) => {
                    let (path, shared) = (path.clone(), shared.clone());
                    Box::new(move || {
                        shared.publish(&path);
                    })
                }
                None => Box::new(|| {}),
            };
            Some(mce_obs::Sampler::start_with(self.live_every, move || {
                hook()
            }))
        } else {
            None
        };
        // Track the latest committed Phase-I state so a truncated run can
        // force-write its checkpoint: a truncated architecture commits
        // nothing, so this state always describes the truncation point.
        let mut last_state = state.clone();
        let mut after_arch = |s: &Phase1State| -> Result<(), MceError> {
            last_state = s.clone();
            if let Some(out) = &mut slices {
                out.push(ArchSlice {
                    arch: range_base + s.archs_done - 1,
                    estimated: s.estimated[seen.0..].to_vec(),
                    shortlist: s.shortlist[seen.1..].to_vec(),
                });
            }
            seen = (s.estimated.len(), s.shortlist.len());
            if let Some(path) = &ck_path {
                if s.archs_done.is_multiple_of(every) || s.archs_done == total {
                    Checkpoint::capture(w_digest.clone(), c_digest.clone(), s, &ck_cache)
                        .save(path)?;
                }
            }
            if let Some((path, shared)) = &live {
                shared.record_arch(s);
                shared.publish(path);
            }
            Ok(())
        };
        let conex =
            explorer.explore_with_engine_resumable(&engine, mem_archs, state, &mut after_arch)?;
        // Stop the background sampler before finalizing, so the last
        // status snapshot on disk is the final one, not a racing sample.
        if let Some(sampler) = sampler {
            sampler.stop();
        }
        if conex.is_truncated() {
            // Stopped at a safe point: persist the progress so the next
            // run resumes here instead of starting over. (The eval-cache
            // spill below is still written too.)
            if let Some(path) = &self.checkpoint_file {
                Checkpoint::capture(w_digest.clone(), c_digest.clone(), &last_state, &cache)
                    .save(path)?;
            }
        } else if let Some(path) = &self.checkpoint_file {
            // The run completed; the checkpoint has served its purpose.
            std::fs::remove_file(path).ok();
        }
        if let Some(path) = &self.eval_cache_file {
            cache.save(path)?;
        }
        if let Some((path, shared)) = &live {
            shared.finish(conex.is_truncated(), conex.stop_reason());
            shared.publish(path);
        }
        if let Some(path) = &self.metrics_out {
            atomic_write(path, crate::live::openmetrics_from_registries().as_bytes())?;
        }
        let cache_stats = cache.stats();
        let report = RunReport::collect(
            &self.workload,
            &self.apex,
            &self.conex,
            self.cache_capacity,
            &cache_stats,
            &conex,
            start.elapsed().as_secs_f64(),
            resumed,
        );
        Ok(SessionResult {
            apex,
            conex,
            cache_stats,
            report,
            resumed,
            arch_slices: slices,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::benchmarks;

    #[test]
    fn session_matches_staged_pipeline() {
        let w = benchmarks::vocoder();
        let session = ExplorationSession::new(w.clone()).preset(Preset::Fast);
        let result = session.run().unwrap();
        let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
        let conex = ConexExplorer::new(ConexConfig::preset(Preset::Fast))
            .explore(&w, apex.selected())
            .unwrap();
        assert_eq!(result.apex, apex);
        assert_eq!(
            result.conex.simulated().len(),
            conex.simulated().len(),
            "same shortlist"
        );
        for (a, b) in result.conex.simulated().iter().zip(conex.simulated()) {
            assert_eq!(a.metrics, b.metrics, "bit-identical metrics");
        }
    }

    #[test]
    fn warm_cache_file_round_trips() {
        let path = std::env::temp_dir().join(format!("mce_session_{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();
        let session = ExplorationSession::new(benchmarks::vocoder())
            .preset(Preset::Fast)
            .eval_cache_file(&path);
        let cold = session.run().unwrap();
        let warm = session.run().unwrap();
        std::fs::remove_file(&path).ok();
        assert!(
            warm.cache_stats.hits > cold.cache_stats.hits,
            "second run answers from the spill: {:?} vs {:?}",
            warm.cache_stats,
            cold.cache_stats
        );
        for (a, b) in cold.conex.simulated().iter().zip(warm.conex.simulated()) {
            assert_eq!(a.metrics, b.metrics, "warm cache never changes results");
        }
    }

    #[test]
    fn resume_from_a_mid_run_checkpoint_matches_uninterrupted() {
        let w = benchmarks::vocoder();
        let ck_path = std::env::temp_dir().join(format!("mce_resume_{}.json", std::process::id()));
        std::fs::remove_file(&ck_path).ok();
        let session = ExplorationSession::new(w.clone()).preset(Preset::Fast);
        let clean = session.run().unwrap();
        assert!(!clean.resumed);
        // Hand-build the checkpoint a run killed after its first
        // architecture would have left behind, then resume from it.
        let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
        let cache = Arc::new(EvalCache::with_capacity(DEFAULT_CAPACITY));
        let engine = EvalEngine::new(&w, ConexConfig::preset(Preset::Fast).trace_len)
            .with_cache(cache.clone());
        let explorer = ConexExplorer::new(ConexConfig::preset(Preset::Fast));
        let state = explorer
            .phase1_partial(&engine, &apex.selected(), 1)
            .unwrap();
        Checkpoint::capture(
            workload_digest(&w).to_hex(),
            config_digest(
                &ApexConfig::preset(Preset::Fast),
                &ConexConfig::preset(Preset::Fast),
                &ConnectivityLibrary::amba(),
                DEFAULT_CAPACITY,
            ),
            &state,
            &cache,
        )
        .save(&ck_path)
        .unwrap();
        let resumed = session.clone().checkpoint_file(&ck_path).run().unwrap();
        assert!(resumed.resumed);
        assert!(!ck_path.exists(), "checkpoint consumed on success");
        assert_eq!(clean.conex.estimated(), resumed.conex.estimated());
        assert_eq!(clean.conex.simulated(), resumed.conex.simulated());
        assert_eq!(clean.cache_stats, resumed.cache_stats);
        // The acceptance bar: byte-identical reports up to wall_clock.
        assert_eq!(
            RunReport::stable_json_prefix(&clean.report.to_json()),
            RunReport::stable_json_prefix(&resumed.report.to_json())
        );
    }

    #[test]
    fn foreign_checkpoint_is_rejected() {
        let ck_path = std::env::temp_dir().join(format!("mce_foreign_{}.json", std::process::id()));
        std::fs::remove_file(&ck_path).ok();
        // A valid checkpoint taken under a different workload…
        let other = benchmarks::compress();
        let cache = EvalCache::with_capacity(DEFAULT_CAPACITY);
        Checkpoint::capture(
            workload_digest(&other).to_hex(),
            "not the real config digest".to_owned(),
            &Phase1State::default(),
            &cache,
        )
        .save(&ck_path)
        .unwrap();
        // …must not be resumed by a vocoder session.
        let err = ExplorationSession::new(benchmarks::vocoder())
            .checkpoint_file(&ck_path)
            .run()
            .unwrap_err();
        assert!(matches!(err, MceError::Checkpoint { .. }), "{err}");
        // A corrupt checkpoint is an error too, not a silent cold start.
        std::fs::write(&ck_path, "not a checkpoint").unwrap();
        let err = ExplorationSession::new(benchmarks::vocoder())
            .checkpoint_file(&ck_path)
            .run()
            .unwrap_err();
        std::fs::remove_file(&ck_path).ok();
        assert!(matches!(err, MceError::Checkpoint { .. }), "{err}");
    }

    #[test]
    fn corrupt_cache_file_is_an_error() {
        let path = std::env::temp_dir().join(format!("mce_corrupt_{}.json", std::process::id()));
        std::fs::write(&path, "{definitely not a spill").unwrap();
        let err = ExplorationSession::new(benchmarks::vocoder())
            .eval_cache_file(&path)
            .run()
            .unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, MceError::Json { .. }), "{err}");
    }
}
