//! The unified exploration session.
//!
//! [`ExplorationSession`] is the one-stop front end for the full
//! APEX → ConEx pipeline. It owns the resources both stages share —
//! the workload's block-compiled trace and the candidate-evaluation
//! cache — so the trace is compiled exactly once per session and every
//! evaluation is memoized across stages, scenarios and (with
//! [`ExplorationSession::eval_cache_file`]) across runs.
//!
//! ```
//! use memory_conex::prelude::*;
//!
//! let result = ExplorationSession::new(memory_conex::appmodel::benchmarks::vocoder())
//!     .preset(Preset::Fast)
//!     .run()
//!     .expect("exploration runs");
//! assert!(!result.conex.pareto_cost_latency().is_empty());
//! ```
//!
//! The staged entry points ([`ApexExplorer::explore`],
//! [`ConexExplorer::explore`]) remain available for driving the stages
//! by hand; the session produces bit-identical results — the shared
//! blocks and cache only remove redundant work.

use crate::report::RunReport;
use mce_apex::{ApexConfig, ApexExplorer, ApexResult};
use mce_appmodel::{TraceBlocks, Workload};
use mce_conex::eval_cache::DEFAULT_CAPACITY;
use mce_conex::{CacheStats, ConexConfig, ConexExplorer, ConexResult, EvalCache, EvalEngine};
use mce_connlib::ConnectivityLibrary;
use mce_error::MceError;
use mce_sim::Preset;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Builder for — and runner of — one end-to-end exploration.
#[derive(Debug, Clone)]
pub struct ExplorationSession {
    workload: Workload,
    apex: ApexConfig,
    conex: ConexConfig,
    library: ConnectivityLibrary,
    cache_capacity: usize,
    eval_cache_file: Option<PathBuf>,
}

/// Everything one session run produced.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Stage 1: the memory-modules exploration.
    pub apex: ApexResult,
    /// Stage 2: the connectivity exploration over the selected memory
    /// architectures.
    pub conex: ConexResult,
    /// Lifetime statistics of the session's evaluation cache. Nonzero
    /// hits on a fresh session mean candidates recurred within the run;
    /// with a warm [`ExplorationSession::eval_cache_file`], prior runs
    /// are answered from disk.
    pub cache_stats: CacheStats,
    /// The run's summary report: config + workload digest, funnel
    /// counters, cache effectiveness, pareto-front sizes,
    /// frontier-evolution samples and (when tracing is enabled) latency
    /// histograms. Serialize with [`RunReport::to_json`].
    pub report: RunReport,
}

impl ExplorationSession {
    /// A session over `workload` at [`Preset::Fast`] scale with the
    /// default AMBA-style connectivity library.
    pub fn new(workload: Workload) -> Self {
        ExplorationSession {
            workload,
            apex: ApexConfig::preset(Preset::Fast),
            conex: ConexConfig::preset(Preset::Fast),
            library: ConnectivityLibrary::amba(),
            cache_capacity: DEFAULT_CAPACITY,
            eval_cache_file: None,
        }
    }

    /// Sets both stage configurations to `preset`.
    #[must_use]
    pub fn preset(mut self, preset: Preset) -> Self {
        self.apex = ApexConfig::preset(preset);
        self.conex = ConexConfig::preset(preset);
        self
    }

    /// Replaces the APEX stage configuration.
    #[must_use]
    pub fn apex_config(mut self, config: ApexConfig) -> Self {
        self.apex = config;
        self
    }

    /// Replaces the ConEx stage configuration.
    #[must_use]
    pub fn conex_config(mut self, config: ConexConfig) -> Self {
        self.conex = config;
        self
    }

    /// Draws connectivity candidates from a custom library.
    #[must_use]
    pub fn library(mut self, library: ConnectivityLibrary) -> Self {
        self.library = library;
        self
    }

    /// Caps the evaluation cache at `capacity` resident entries.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Persists the evaluation cache across runs: loaded from `path`
    /// before exploring (a missing file is a cold start, not an error)
    /// and saved back after.
    #[must_use]
    pub fn eval_cache_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.eval_cache_file = Some(path.into());
        self
    }

    /// Worker threads for estimation and full simulation (0 = one per
    /// core). Results are identical for any thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.conex.threads = threads;
        self
    }

    /// Runs APEX then ConEx over the shared trace and cache.
    ///
    /// # Errors
    ///
    /// Returns an [`MceError`] if a configured
    /// [`eval_cache_file`](ExplorationSession::eval_cache_file) exists
    /// but cannot be parsed, or cannot be written back.
    pub fn run(&self) -> Result<SessionResult, MceError> {
        let start = Instant::now();
        let cache = Arc::new(match &self.eval_cache_file {
            Some(path) if path.exists() => EvalCache::load(path, self.cache_capacity)?,
            _ => EvalCache::with_capacity(self.cache_capacity),
        });
        // One compilation serves both stages: blocks compiled at the
        // longer of the two trace lengths replay any shorter prefix.
        let blocks = Arc::new(TraceBlocks::compile(
            &self.workload,
            self.apex.trace_len.max(self.conex.trace_len),
        ));
        let apex = ApexExplorer::new(self.apex.clone()).explore_with_blocks(&self.workload, &blocks);
        let engine = EvalEngine::with_blocks(&self.workload, blocks).with_cache(cache.clone());
        let conex = ConexExplorer::with_library(self.conex.clone(), self.library.clone())
            .explore_with_engine(&engine, apex.selected());
        if let Some(path) = &self.eval_cache_file {
            cache.save(path)?;
        }
        let cache_stats = cache.stats();
        let report = RunReport::collect(
            &self.workload,
            &self.apex,
            &self.conex,
            self.cache_capacity,
            &cache_stats,
            &conex,
            start.elapsed().as_secs_f64(),
        );
        Ok(SessionResult {
            apex,
            conex,
            cache_stats,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_appmodel::benchmarks;

    #[test]
    fn session_matches_staged_pipeline() {
        let w = benchmarks::vocoder();
        let session = ExplorationSession::new(w.clone()).preset(Preset::Fast);
        let result = session.run().unwrap();
        let apex = ApexExplorer::new(ApexConfig::preset(Preset::Fast)).explore(&w);
        let conex =
            ConexExplorer::new(ConexConfig::preset(Preset::Fast)).explore(&w, apex.selected());
        assert_eq!(result.apex, apex);
        assert_eq!(
            result.conex.simulated().len(),
            conex.simulated().len(),
            "same shortlist"
        );
        for (a, b) in result.conex.simulated().iter().zip(conex.simulated()) {
            assert_eq!(a.metrics, b.metrics, "bit-identical metrics");
        }
    }

    #[test]
    fn warm_cache_file_round_trips() {
        let path = std::env::temp_dir().join(format!("mce_session_{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();
        let session = ExplorationSession::new(benchmarks::vocoder())
            .preset(Preset::Fast)
            .eval_cache_file(&path);
        let cold = session.run().unwrap();
        let warm = session.run().unwrap();
        std::fs::remove_file(&path).ok();
        assert!(
            warm.cache_stats.hits > cold.cache_stats.hits,
            "second run answers from the spill: {:?} vs {:?}",
            warm.cache_stats,
            cold.cache_stats
        );
        for (a, b) in cold.conex.simulated().iter().zip(warm.conex.simulated()) {
            assert_eq!(a.metrics, b.metrics, "warm cache never changes results");
        }
    }

    #[test]
    fn corrupt_cache_file_is_an_error() {
        let path = std::env::temp_dir().join(format!("mce_corrupt_{}.json", std::process::id()));
        std::fs::write(&path, "{definitely not a spill").unwrap();
        let err = ExplorationSession::new(benchmarks::vocoder())
            .eval_cache_file(&path)
            .run()
            .unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, MceError::Json { .. }), "{err}");
    }
}
