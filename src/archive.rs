//! Content-addressed archive of exploration run reports.
//!
//! Every run report has a deterministic prefix (everything before
//! `wall_clock` — see [`RunReport::stable_json_prefix`]). The archive
//! stores reports under the FNV-128 digest of that prefix, so two runs
//! of the same configuration on the same workload — regardless of
//! thread count, machine or wall-clock — collapse to the *same* digest
//! and are stored once. That turns the archive into a cross-run memory:
//! `mce runs list` shows what has been explored, `mce diff` compares
//! any two entries, and a re-run of a known configuration is detected
//! as a duplicate instead of silently accumulating.
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/
//!   index.jsonl            one summary line per archived run (append-only)
//!   objects/<digest>.json  the full report, verbatim
//! ```
//!
//! The index line is hand-serialized with a fixed key order, so the
//! index itself is byte-stable and diff-friendly:
//!
//! ```text
//! {"schema": 1, "digest": "…", "workload": "…", "workload_digest": "…",
//!  "preset": "fast|paper|custom", "status": "…", "stop_reason": …,
//!  "funnel": {"enumerated": N, "estimated": N, "simulated": N},
//!  "hypervolume": X}
//! ```
//!
//! Archive mutations are counted under the `archive.*` counter family
//! (`runs_added`, `duplicates`, `bytes_stored`, `gc_removed`).

use crate::checkpoint::fnv128;
use crate::report::{check_report_schema, RunReport};
use mce_error::{atomic_write, MceError};
use mce_obs as obs;
use mce_obs::json::{self, Value};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version stamp of the archive index line format. Bumped when the line
/// shape changes incompatibly; readers refuse newer versions with a
/// typed [`MceError::SchemaVersion`].
pub const ARCHIVE_SCHEMA: u64 = 1;

/// One archived run, as summarized on its index line.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveEntry {
    /// FNV-128 digest (32 hex chars) of the report's stable prefix —
    /// the entry's identity and the object file's name.
    pub digest: String,
    /// Workload name.
    pub workload: String,
    /// Workload content digest.
    pub workload_digest: String,
    /// Preset inferred from the config section: `fast`, `paper` or
    /// `custom`.
    pub preset: String,
    /// Run status (`completed` / `truncated`).
    pub status: String,
    /// Stop reason for truncated runs.
    pub stop_reason: Option<String>,
    /// Candidate funnel totals: enumerated, estimated, simulated.
    pub funnel: (u64, u64, u64),
    /// Hypervolume proxy of the final frontier snapshot (0 when the run
    /// recorded no snapshots).
    pub hypervolume: f64,
}

/// Outcome of [`RunArchive::add`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddOutcome {
    /// Digest of the report's stable prefix.
    pub digest: String,
    /// True when an entry with this digest already existed; nothing was
    /// written.
    pub duplicate: bool,
}

/// What [`RunArchive::gc`] removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Index entries dropped (beyond `keep`, or pointing at missing
    /// objects).
    pub entries_removed: usize,
    /// Object files deleted (orphaned, or belonging to dropped entries).
    pub objects_removed: usize,
}

/// A content-addressed run archive rooted at a directory.
#[derive(Debug, Clone)]
pub struct RunArchive {
    root: PathBuf,
}

impl RunArchive {
    /// Opens (without creating) an archive rooted at `root`. The
    /// directory is created lazily on first [`RunArchive::add`].
    pub fn open(root: impl Into<PathBuf>) -> Self {
        RunArchive { root: root.into() }
    }

    /// The archive's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.jsonl")
    }

    fn object_path(&self, digest: &str) -> PathBuf {
        self.root.join("objects").join(format!("{digest}.json"))
    }

    /// Archives a serialized run report. The digest covers only the
    /// stable prefix, so re-running the same configuration (any thread
    /// count, hot or cold cache timing aside — the cache *statistics*
    /// do shift the digest) dedupes against the existing entry.
    ///
    /// # Errors
    ///
    /// [`MceError::Json`] when `report_text` is not valid JSON,
    /// [`MceError::SchemaVersion`] when its report schema is unknown,
    /// [`MceError::Io`] on filesystem failures.
    pub fn add(&self, report_text: &str) -> Result<AddOutcome, MceError> {
        let doc =
            json::parse(report_text).map_err(|e| MceError::json("run report", e.to_string()))?;
        check_report_schema(&doc)?;
        let digest = fnv128(RunReport::stable_json_prefix(report_text).as_bytes());
        if self.entries()?.iter().any(|e| e.digest == digest) {
            obs::counter_add("archive.duplicates", 1);
            return Ok(AddOutcome {
                digest,
                duplicate: true,
            });
        }
        fs::create_dir_all(self.root.join("objects"))
            .map_err(|e| MceError::io("creating archive directories", e))?;
        atomic_write(self.object_path(&digest), report_text.as_bytes())?;
        let line = index_line(&digest, &doc);
        let mut index = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.index_path())
            .map_err(|e| MceError::io("opening archive index", e))?;
        index
            .write_all(line.as_bytes())
            .map_err(|e| MceError::io("appending archive index", e))?;
        obs::counter_add("archive.runs_added", 1);
        obs::counter_add("archive.bytes_stored", report_text.len() as u64);
        Ok(AddOutcome {
            digest,
            duplicate: false,
        })
    }

    /// All index entries, oldest first. A missing index means an empty
    /// archive.
    ///
    /// # Errors
    ///
    /// [`MceError::Io`] when the index exists but cannot be read,
    /// [`MceError::Json`] on a malformed line,
    /// [`MceError::SchemaVersion`] on a line written by a newer build.
    pub fn entries(&self) -> Result<Vec<ArchiveEntry>, MceError> {
        let text = match fs::read_to_string(self.index_path()) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(MceError::io("reading archive index", e)),
        };
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(parse_index_line)
            .collect()
    }

    /// Resolves a digest prefix (at least 4 hex chars) to the unique
    /// matching entry and returns its digest plus the archived report
    /// text.
    ///
    /// # Errors
    ///
    /// [`MceError::InvalidInput`] when the prefix is too short, matches
    /// nothing or is ambiguous; index/read errors as in
    /// [`RunArchive::entries`].
    pub fn show(&self, digest_prefix: &str) -> Result<(String, String), MceError> {
        if digest_prefix.len() < 4 {
            return Err(MceError::invalid_input(format!(
                "digest prefix `{digest_prefix}` is too short (need at least 4 hex chars)"
            )));
        }
        let entries = self.entries()?;
        let matches: Vec<&ArchiveEntry> = entries
            .iter()
            .filter(|e| e.digest.starts_with(digest_prefix))
            .collect();
        match matches.as_slice() {
            [] => Err(MceError::invalid_input(format!(
                "no archived run matches digest prefix `{digest_prefix}`"
            ))),
            [one] => {
                let text = fs::read_to_string(self.object_path(&one.digest))
                    .map_err(|e| MceError::io("reading archived report", e))?;
                Ok((one.digest.clone(), text))
            }
            many => Err(MceError::invalid_input(format!(
                "digest prefix `{digest_prefix}` is ambiguous ({} matches)",
                many.len()
            ))),
        }
    }

    /// Garbage-collects the archive: keeps the newest `keep` index
    /// entries (all of them when `None`), drops entries whose object
    /// file vanished, and deletes object files no surviving entry
    /// references. The index is rewritten atomically.
    ///
    /// # Errors
    ///
    /// Index/read errors as in [`RunArchive::entries`]; [`MceError::Io`]
    /// on filesystem failures during the rewrite.
    pub fn gc(&self, keep: Option<usize>) -> Result<GcStats, MceError> {
        let entries = self.entries()?;
        let mut stats = GcStats::default();
        let cut = keep.map_or(0, |k| entries.len().saturating_sub(k));
        let survivors: Vec<&ArchiveEntry> = entries[cut..]
            .iter()
            .filter(|e| self.object_path(&e.digest).exists())
            .collect();
        stats.entries_removed = entries.len() - survivors.len();
        let objects_dir = self.root.join("objects");
        if objects_dir.is_dir() {
            let listing = fs::read_dir(&objects_dir)
                .map_err(|e| MceError::io("listing archive objects", e))?;
            for item in listing {
                let item = item.map_err(|e| MceError::io("listing archive objects", e))?;
                let name = item.file_name().to_string_lossy().into_owned();
                let digest = name.strip_suffix(".json").unwrap_or(&name);
                if !survivors.iter().any(|e| e.digest == digest) {
                    fs::remove_file(item.path())
                        .map_err(|e| MceError::io("removing archive object", e))?;
                    stats.objects_removed += 1;
                }
            }
        }
        if stats.entries_removed > 0 {
            let mut rewritten = String::new();
            for e in &survivors {
                rewritten.push_str(&entry_line(e));
            }
            atomic_write(self.index_path(), rewritten.as_bytes())?;
        }
        obs::counter_add(
            "archive.gc_removed",
            (stats.entries_removed + stats.objects_removed) as u64,
        );
        Ok(stats)
    }
}

/// Infers the preset name from a report's `config` section by matching
/// the two knobs that differ between the built-in presets.
fn infer_preset(doc: &Value) -> &'static str {
    let knob = |k: &str| {
        doc.get("config")
            .and_then(|c| c.get(k))
            .and_then(Value::as_u64)
    };
    match (knob("conex_trace_len"), knob("local_keep")) {
        (Some(15_000), Some(16)) => "fast",
        (Some(60_000), Some(48)) => "paper",
        _ => "custom",
    }
}

fn index_line(digest: &str, doc: &Value) -> String {
    let s = |k: &str| doc.get(k).and_then(Value::as_str).unwrap_or("");
    let counter = |k: &str| {
        doc.get("counters")
            .and_then(|c| c.get(k))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let hypervolume = doc
        .get("frontier_evolution")
        .and_then(Value::as_array)
        .and_then(<[Value]>::last)
        .and_then(|snap| snap.get("hypervolume"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    entry_line(&ArchiveEntry {
        digest: digest.to_owned(),
        workload: s("workload").to_owned(),
        workload_digest: s("workload_digest").to_owned(),
        preset: infer_preset(doc).to_owned(),
        status: s("status").to_owned(),
        stop_reason: doc
            .get("stop_reason")
            .and_then(Value::as_str)
            .map(str::to_owned),
        funnel: (
            counter("conex.candidates_enumerated"),
            counter("conex.candidates_estimated"),
            counter("conex.simulated"),
        ),
        hypervolume,
    })
}

fn entry_line(e: &ArchiveEntry) -> String {
    let stop = e.stop_reason.as_ref().map_or_else(
        || "null".to_owned(),
        |r| format!("\"{}\"", obs::escape_json(r)),
    );
    let hv = if e.hypervolume.is_finite() {
        format!("{}", e.hypervolume)
    } else {
        "0".to_owned()
    };
    format!(
        "{{\"schema\": {ARCHIVE_SCHEMA}, \"digest\": \"{}\", \"workload\": \"{}\", \
         \"workload_digest\": \"{}\", \"preset\": \"{}\", \"status\": \"{}\", \
         \"stop_reason\": {stop}, \"funnel\": {{\"enumerated\": {}, \"estimated\": {}, \
         \"simulated\": {}}}, \"hypervolume\": {hv}}}\n",
        obs::escape_json(&e.digest),
        obs::escape_json(&e.workload),
        obs::escape_json(&e.workload_digest),
        obs::escape_json(&e.preset),
        obs::escape_json(&e.status),
        e.funnel.0,
        e.funnel.1,
        e.funnel.2,
    )
}

fn parse_index_line(line: &str) -> Result<ArchiveEntry, MceError> {
    let doc = json::parse(line).map_err(|e| MceError::json("archive index", e.to_string()))?;
    match doc.get("schema").and_then(Value::as_u64) {
        Some(v) if (1..=ARCHIVE_SCHEMA).contains(&v) => {}
        found => {
            return Err(MceError::schema_version(
                "archive index",
                found.map_or_else(|| "none".to_owned(), |v| v.to_string()),
                ARCHIVE_SCHEMA,
            ))
        }
    }
    let s = |k: &str| doc.get(k).and_then(Value::as_str).unwrap_or("").to_owned();
    let f = |k: &str| {
        doc.get("funnel")
            .and_then(|f| f.get(k))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    Ok(ArchiveEntry {
        digest: s("digest"),
        workload: s("workload"),
        workload_digest: s("workload_digest"),
        preset: s("preset"),
        status: s("status"),
        stop_reason: doc
            .get("stop_reason")
            .and_then(Value::as_str)
            .map(str::to_owned),
        funnel: (f("enumerated"), f("estimated"), f("simulated")),
        hypervolume: doc
            .get("hypervolume")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
    })
}

/// Renders the archive listing as an aligned text table, newest last.
pub fn render_listing(entries: &[ArchiveEntry]) -> String {
    let mut out = String::from(
        "DIGEST        WORKLOAD      PRESET  STATUS      ENUM/EST/SIM           HYPERVOL\n",
    );
    for e in entries {
        let stop = e
            .stop_reason
            .as_ref()
            .map_or_else(String::new, |r| format!(" ({r})"));
        out.push_str(&format!(
            "{:<12}  {:<12}  {:<6}  {:<10}  {:>6}/{:>6}/{:>6}  {:>10.4}\n",
            &e.digest[..12.min(e.digest.len())],
            e.workload,
            e.preset,
            format!("{}{stop}", e.status),
            e.funnel.0,
            e.funnel.1,
            e.funnel.2,
            e.hypervolume,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(workload: &str, trace_len: u64, enumerated: u64) -> String {
        format!(
            "{{\n  \"schema\": 1,\n  \"workload\": \"{workload}\",\n  \
             \"workload_digest\": \"abcd1234\",\n  \"status\": \"completed\",\n  \
             \"stop_reason\": null,\n  \"config\": {{\n    \"conex_trace_len\": {trace_len},\n    \
             \"local_keep\": 16\n  }},\n  \"counters\": {{\n    \
             \"conex.candidates_enumerated\": {enumerated},\n    \
             \"conex.candidates_estimated\": 40,\n    \"conex.simulated\": 8\n  }},\n  \
             \"frontier_evolution\": [\n    {{\"archs_explored\": 1, \"estimated\": 40, \
             \"frontier_size\": 5, \"hypervolume\": 0.375}}\n  ],\n  \
             \"wall_clock\": {{\"elapsed_s\": 1.5}}\n}}\n"
        )
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mce-archive-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn add_list_show_round_trip_and_dedupe() {
        let root = temp_root("roundtrip");
        let archive = RunArchive::open(&root);
        assert!(archive.entries().unwrap().is_empty());

        let report = report_with("vocoder", 15_000, 120);
        let added = archive.add(&report).unwrap();
        assert!(!added.duplicate);
        assert_eq!(added.digest.len(), 32);

        // Same stable prefix, different wall clock: a duplicate.
        let rerun = report.replace("\"elapsed_s\": 1.5", "\"elapsed_s\": 9.9");
        let again = archive.add(&rerun).unwrap();
        assert!(again.duplicate);
        assert_eq!(again.digest, added.digest);

        // A deterministic difference lands as a second entry.
        let other = archive.add(&report_with("compress", 60_000, 300)).unwrap();
        assert!(!other.duplicate);
        assert_ne!(other.digest, added.digest);

        let entries = archive.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].workload, "vocoder");
        assert_eq!(entries[0].preset, "fast");
        assert_eq!(entries[0].funnel, (120, 40, 8));
        assert!((entries[0].hypervolume - 0.375).abs() < 1e-12);
        assert_eq!(entries[1].preset, "custom"); // 60k trace + local_keep 16

        let (digest, text) = archive.show(&added.digest[..8]).unwrap();
        assert_eq!(digest, added.digest);
        assert_eq!(text, report);

        let listing = render_listing(&entries);
        assert!(listing.contains("vocoder"));
        assert!(listing.contains("fast"));

        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn show_rejects_short_missing_and_ambiguous_prefixes() {
        let root = temp_root("show");
        let archive = RunArchive::open(&root);
        assert!(archive
            .show("ab")
            .unwrap_err()
            .to_string()
            .contains("too short"));
        assert!(archive
            .show("abcd")
            .unwrap_err()
            .to_string()
            .contains("no archived run"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_prunes_old_entries_and_orphans() {
        let root = temp_root("gc");
        let archive = RunArchive::open(&root);
        let d1 = archive
            .add(&report_with("vocoder", 15_000, 1))
            .unwrap()
            .digest;
        let d2 = archive
            .add(&report_with("vocoder", 15_000, 2))
            .unwrap()
            .digest;
        let d3 = archive
            .add(&report_with("vocoder", 15_000, 3))
            .unwrap()
            .digest;
        // An orphaned object no index entry references.
        fs::write(root.join("objects").join("feedfeed.json"), b"{}").unwrap();

        let stats = archive.gc(Some(2)).unwrap();
        assert_eq!(stats.entries_removed, 1);
        assert_eq!(stats.objects_removed, 2); // d1's object + the orphan

        let digests: Vec<String> = archive
            .entries()
            .unwrap()
            .into_iter()
            .map(|e| e.digest)
            .collect();
        assert_eq!(digests, vec![d2.clone(), d3.clone()]);
        assert!(!archive
            .root()
            .join("objects")
            .join(format!("{d1}.json"))
            .exists());
        assert!(archive
            .root()
            .join("objects")
            .join(format!("{d2}.json"))
            .exists());

        // Idempotent when nothing is over quota.
        assert_eq!(archive.gc(Some(2)).unwrap(), GcStats::default());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rejects_malformed_reports_and_foreign_index_lines() {
        let root = temp_root("reject");
        let archive = RunArchive::open(&root);
        assert!(matches!(
            archive.add("not json").unwrap_err(),
            MceError::Json { .. }
        ));
        assert!(matches!(
            archive.add("{\"schema\": 99}").unwrap_err(),
            MceError::SchemaVersion { .. }
        ));

        fs::create_dir_all(&root).unwrap();
        fs::write(
            archive.index_path(),
            "{\"schema\": 99, \"digest\": \"x\"}\n",
        )
        .unwrap();
        match archive.entries().unwrap_err() {
            MceError::SchemaVersion { artifact, .. } => assert_eq!(artifact, "archive index"),
            other => panic!("expected SchemaVersion, got {other:?}"),
        }
        fs::remove_dir_all(&root).unwrap();
    }
}
