//! Live run telemetry: the status file behind `mce explore
//! --live-status`, the `mce top` dashboard, and the OpenMetrics text
//! exporter behind `mce export-metrics` / `--metrics-out`.
//!
//! A live-status file is a schema-versioned JSON snapshot of a running
//! exploration — phase, candidate funnel, evaluation rate, cache hit
//! rate, remaining budget, a [`StopReason`](mce_budget::StopReason)-aware
//! ETA, frontier hypervolume — plus the full counter/gauge/histogram
//! registries and both time-series channels from
//! [`mce_obs::timeseries`]. It is rewritten atomically (temp sibling +
//! rename) on a wall-clock cadence by the session's background sampler
//! and at every per-architecture boundary, so a reader always sees a
//! complete, parseable document: either the previous snapshot or the
//! next one, never a torn file.
//!
//! Publishing is strictly best-effort and strictly read-only with
//! respect to the exploration: a failed write bumps a failure tally in
//! the next snapshot but never surfaces as a run error, and everything
//! in the file is derived from registries the instrumentation layer
//! already maintains — results are bit-identical with `--live-status`
//! on or off. Wall-clock-derived fields (rates, ETA, wall series) are
//! inherently nondeterministic and never feed anything deterministic;
//! the deterministic logical series carried here are the same ones the
//! run report embeds.

use mce_budget::EvalBudget;
use mce_conex::explore::Phase1State;
use mce_error::atomic_write;
use mce_obs as obs;
use mce_obs::json::Value;
use mce_obs::{escape_json, HistogramSummary};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Version of the live-status JSON layout, carried as the file's first
/// key (`"live_schema"`). `mce top` and `mce export-metrics` refuse
/// files with a different version rather than misrendering them.
pub const LIVE_SCHEMA: u64 = 1;

/// The shared progress state behind one run's live-status file: updated
/// by the session at per-architecture boundaries, read by the
/// wall-clock sampler hook, serialized by [`LiveShared::to_json`].
///
/// All updates are lock-free or short-lived-lock stores; nothing here
/// sits on the exploration's hot path.
#[derive(Debug)]
pub struct LiveShared {
    workload: String,
    threads: usize,
    max_evals: Option<u64>,
    deadline_s: Option<f64>,
    budget: Option<Arc<EvalBudget>>,
    started: Instant,
    archs_total: AtomicUsize,
    archs_done: AtomicUsize,
    frontier_size: AtomicUsize,
    hypervolume_bits: AtomicU64,
    outcome: Mutex<Outcome>,
    writes_attempted: AtomicU64,
    writes_failed: AtomicU64,
}

#[derive(Debug, Clone)]
struct Outcome {
    status: &'static str,
    stop_reason: Option<String>,
}

impl LiveShared {
    /// A fresh progress state for a run over `workload`.
    pub fn new(
        workload: &str,
        threads: usize,
        max_evals: Option<u64>,
        deadline_s: Option<f64>,
        budget: Option<Arc<EvalBudget>>,
    ) -> Self {
        LiveShared {
            workload: workload.to_owned(),
            threads,
            max_evals,
            deadline_s,
            budget,
            started: Instant::now(),
            archs_total: AtomicUsize::new(0),
            archs_done: AtomicUsize::new(0),
            frontier_size: AtomicUsize::new(0),
            hypervolume_bits: AtomicU64::new(0f64.to_bits()),
            outcome: Mutex::new(Outcome {
                status: "running",
                stop_reason: None,
            }),
            writes_attempted: AtomicU64::new(0),
            writes_failed: AtomicU64::new(0),
        }
    }

    /// Sets the Phase-I architecture total (known once APEX has selected).
    pub fn set_archs_total(&self, total: usize) {
        self.archs_total.store(total, Ordering::SeqCst);
    }

    /// Records a committed Phase-I architecture boundary.
    pub fn record_arch(&self, state: &Phase1State) {
        self.archs_done.store(state.archs_done, Ordering::SeqCst);
        if let Some(last) = state.frontier_evolution.last() {
            self.frontier_size
                .store(last.frontier_size, Ordering::SeqCst);
            self.hypervolume_bits
                .store(last.hypervolume.to_bits(), Ordering::SeqCst);
        }
    }

    /// Marks the run finished (`"complete"` or `"truncated"` + reason).
    pub fn finish(&self, truncated: bool, stop_reason: Option<&str>) {
        let mut outcome = self.outcome.lock().unwrap_or_else(PoisonError::into_inner);
        outcome.status = if truncated { "truncated" } else { "complete" };
        outcome.stop_reason = stop_reason.map(str::to_owned);
    }

    /// Atomically publishes the current snapshot to `path`. Best-effort
    /// by contract: a failed write is tallied into the *next* snapshot's
    /// `"writes"` section and reported as `false`, never an error — live
    /// monitoring must not be able to fail a run.
    pub fn publish(&self, path: &Path) -> bool {
        self.writes_attempted.fetch_add(1, Ordering::SeqCst);
        let body = self.to_json();
        match atomic_write(path, body.as_bytes()) {
            Ok(()) => true,
            Err(_) => {
                self.writes_failed.fetch_add(1, Ordering::SeqCst);
                false
            }
        }
    }

    /// The ETA in seconds plus the basis it was projected from — the
    /// *soonest* projected stop across every active bound: remaining
    /// Phase-I architectures at the observed per-architecture rate
    /// (`"archs"`), remaining evaluation budget at the observed
    /// evaluation rate (`"max-evals"`), or remaining wall time to the
    /// deadline (`"deadline"`). `None` until there is enough progress to
    /// project from.
    pub fn eta(&self) -> Option<(f64, &'static str)> {
        let elapsed = self.started.elapsed().as_secs_f64();
        let mut best: Option<(f64, &'static str)> = None;
        let mut consider = |eta: f64, basis: &'static str| {
            if eta.is_finite() && (best.is_none() || eta < best.expect("checked").0) {
                best = Some((eta, basis));
            }
        };
        let done = self.archs_done.load(Ordering::SeqCst);
        let total = self.archs_total.load(Ordering::SeqCst);
        if done > 0 && total > done && elapsed > 0.0 {
            consider((total - done) as f64 * elapsed / done as f64, "archs");
        }
        if let (Some(max), Some(budget)) = (self.max_evals, &self.budget) {
            if let Some(remaining) = budget.remaining() {
                let consumed = max.saturating_sub(remaining);
                if consumed > 0 && elapsed > 0.0 {
                    consider(remaining as f64 * elapsed / consumed as f64, "max-evals");
                }
            }
        }
        if let Some(deadline) = self.deadline_s {
            consider((deadline - elapsed).max(0.0), "deadline");
        }
        best
    }

    /// Serializes the snapshot as the live-status JSON document. Reads
    /// the counter/gauge/histogram registries and both time-series
    /// channels when tracing is enabled; with no sink installed those
    /// sections are empty, the progress fields still publish.
    pub fn to_json(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let outcome = self
            .outcome
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let (counters, gauges, histograms) = registries_snapshot();
        let by_name: BTreeMap<&str, u64> = counters.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let counter = |name: &str| by_name.get(name).copied().unwrap_or(0);
        let done = self.archs_done.load(Ordering::SeqCst);
        let total = self.archs_total.load(Ordering::SeqCst);
        let phase = if outcome.status != "running" {
            "done"
        } else if total > 0 && done >= total {
            "phase2"
        } else {
            "phase1"
        };
        let (hits, misses) = (counter("eval_cache.hits"), counter("eval_cache.misses"));
        let evals = hits + misses;
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"live_schema\": {LIVE_SCHEMA},\n"));
        s.push_str(&format!(
            "  \"workload\": \"{}\",\n",
            escape_json(&self.workload)
        ));
        s.push_str(&format!("  \"status\": \"{}\",\n", outcome.status));
        match &outcome.stop_reason {
            Some(r) => s.push_str(&format!("  \"stop_reason\": \"{}\",\n", escape_json(r))),
            None => s.push_str("  \"stop_reason\": null,\n"),
        }
        s.push_str(&format!("  \"phase\": \"{phase}\",\n"));
        s.push_str(&format!("  \"archs_done\": {done},\n"));
        s.push_str(&format!("  \"archs_total\": {total},\n"));
        s.push_str(&format!(
            "  \"candidates\": {{\"enumerated\": {}, \"estimated\": {}, \"simulated\": {}}},\n",
            counter("conex.candidates_enumerated"),
            counter("conex.candidates_estimated"),
            counter("conex.simulated"),
        ));
        s.push_str(&format!(
            "  \"evals\": {{\"total\": {evals}, \"per_second\": {}}},\n",
            fmt_f64(if elapsed > 0.0 {
                evals as f64 / elapsed
            } else {
                0.0
            })
        ));
        s.push_str(&format!(
            "  \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {}}},\n",
            fmt_f64(if evals > 0 {
                hits as f64 / evals as f64
            } else {
                0.0
            })
        ));
        let remaining = self.budget.as_ref().and_then(|b| b.remaining());
        s.push_str(&format!(
            "  \"budget\": {{\"max_evals\": {}, \"evals_remaining\": {}, \"deadline_s\": {}, \
             \"timeouts\": {}, \"degraded\": {}}},\n",
            opt_u64(self.max_evals),
            opt_u64(remaining),
            self.deadline_s.map_or_else(|| "null".to_owned(), fmt_f64),
            counter("budget.timeouts"),
            counter("budget.degraded_evals"),
        ));
        s.push_str(&format!(
            "  \"frontier\": {{\"size\": {}, \"hypervolume\": {}}},\n",
            self.frontier_size.load(Ordering::SeqCst),
            fmt_f64(f64::from_bits(self.hypervolume_bits.load(Ordering::SeqCst))),
        ));
        match self.eta() {
            Some((eta, basis)) => s.push_str(&format!(
                "  \"eta\": {{\"seconds\": {}, \"basis\": \"{basis}\"}},\n",
                fmt_f64(eta)
            )),
            None => s.push_str("  \"eta\": null,\n"),
        }
        s.push_str(&format!("  \"elapsed_s\": {},\n", fmt_f64(elapsed)));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!(
            "  \"writes\": {{\"attempted\": {}, \"failed\": {}}},\n",
            self.writes_attempted.load(Ordering::SeqCst),
            self.writes_failed.load(Ordering::SeqCst),
        ));
        s.push_str(&u64_object("counters", &counters, "  "));
        s.push_str(&u64_object("gauges", &gauges, "  "));
        let hists: Vec<String> = histograms
            .iter()
            .map(|(name, h)| {
                format!(
                    "    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"min\": {}, \
                     \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                    escape_json(name),
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.p50,
                    h.p90,
                    h.p99
                )
            })
            .collect();
        if hists.is_empty() {
            s.push_str("  \"histograms\": [],\n");
        } else {
            s.push_str(&format!(
                "  \"histograms\": [\n{}\n  ],\n",
                hists.join(",\n")
            ));
        }
        let (logical, wall) = if obs::tracing_enabled() {
            (obs::logical_series(), obs::wall_series())
        } else {
            (Vec::new(), Vec::new())
        };
        s.push_str("  \"series\": {\n");
        s.push_str(&series_object("logical", &logical, "    "));
        s.push_str(",\n");
        s.push_str(&series_object("wall", &wall, "    "));
        s.push_str("\n  }\n}\n");
        s
    }
}

/// Counter, gauge and histogram registry snapshots, in that order
/// (empty when tracing is disabled).
type Registries = (
    Vec<(String, u64)>,
    Vec<(String, u64)>,
    Vec<(String, HistogramSummary)>,
);

/// Counter, gauge and histogram registries as owned snapshots (empty
/// when tracing is disabled).
fn registries_snapshot() -> Registries {
    if !obs::tracing_enabled() {
        return (Vec::new(), Vec::new(), Vec::new());
    }
    (
        obs::counters_snapshot()
            .into_iter()
            .map(|(n, v)| (n.to_owned(), v))
            .collect(),
        obs::gauges_snapshot()
            .into_iter()
            .map(|(n, v)| (n.to_owned(), v))
            .collect(),
        obs::histograms_snapshot()
            .into_iter()
            .map(|(n, h)| (n.to_owned(), h.summary()))
            .collect(),
    )
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |n| n.to_string())
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// `"key": {"name": value, ...}` with a trailing comma, at `indent`.
fn u64_object(key: &str, entries: &[(String, u64)], indent: &str) -> String {
    if entries.is_empty() {
        return format!("{indent}\"{key}\": {{}},\n");
    }
    let lines: Vec<String> = entries
        .iter()
        .map(|(name, v)| format!("{indent}  \"{}\": {v}", escape_json(name)))
        .collect();
    format!(
        "{indent}\"{key}\": {{\n{}\n{indent}}},\n",
        lines.join(",\n")
    )
}

/// One time-series channel as `"key": {"name": [[at, value], ...]}` —
/// the exact layout [`RunReport`](crate::RunReport) embeds under
/// `wall_clock.timeseries`, so `mce top` reads both the same way.
fn series_object(
    key: &str,
    series: &[(&'static str, Vec<obs::SeriesPoint>)],
    indent: &str,
) -> String {
    if series.is_empty() {
        return format!("{indent}\"{key}\": {{}}");
    }
    let lines: Vec<String> = series
        .iter()
        .map(|(name, points)| {
            let pts: Vec<String> = points
                .iter()
                .map(|p| format!("[{}, {}]", p.at, p.value))
                .collect();
            format!("{indent}  \"{}\": [{}]", escape_json(name), pts.join(", "))
        })
        .collect();
    format!("{indent}\"{key}\": {{\n{}\n{indent}}}", lines.join(",\n"))
}

// ---------------------------------------------------------------------------
// OpenMetrics text exporter
// ---------------------------------------------------------------------------

/// Renders counter/gauge/histogram sets as OpenMetrics text: counters as
/// `counter` families with the mandatory `_total` sample suffix, gauges
/// as `gauge`, histogram summaries as `summary` families with
/// `quantile`-labelled samples plus `_count`/`_sum`, terminated by the
/// mandatory `# EOF` line. Names are sanitized to `[a-zA-Z0-9_:]` and
/// prefixed `mce_`.
pub fn render_openmetrics(
    counters: &[(String, u64)],
    gauges: &[(String, u64)],
    histograms: &[(String, HistogramSummary)],
) -> String {
    let mut out = String::new();
    for (name, value) in counters {
        let metric = metric_name(name);
        let name = escape_help(name);
        out.push_str(&format!(
            "# TYPE {metric} counter\n# HELP {metric} mce run counter {name}\n\
             {metric}_total {value}\n"
        ));
    }
    for (name, value) in gauges {
        let metric = metric_name(name);
        let name = escape_help(name);
        out.push_str(&format!(
            "# TYPE {metric} gauge\n# HELP {metric} mce run gauge {name}\n\
             {metric} {value}\n"
        ));
    }
    for (name, h) in histograms {
        let metric = metric_name(name);
        let name = escape_help(name);
        out.push_str(&format!(
            "# TYPE {metric} summary\n# HELP {metric} mce latency summary {name} (us)\n"
        ));
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            out.push_str(&format!(
                "{metric}{{quantile=\"{}\"}} {v}\n",
                escape_label(q)
            ));
        }
        out.push_str(&format!("{metric}_count {}\n", h.count));
        out.push_str(&format!("{metric}_sum {}\n", h.sum));
    }
    out.push_str("# EOF\n");
    out
}

/// OpenMetrics text straight from the process-global registries (empty
/// families — just the terminator — when tracing is disabled). The
/// session writes this to `--metrics-out` at end of run.
pub fn openmetrics_from_registries() -> String {
    let (counters, gauges, histograms) = registries_snapshot();
    render_openmetrics(&counters, &gauges, &histograms)
}

/// OpenMetrics text from a parsed live-status file (`"live_schema"`) or
/// run-report file (`"schema"`): one exporter, both artifacts. Report
/// files contribute their quarantined `wall_clock.budget` counters too.
///
/// # Errors
///
/// Returns a message when the document carries neither schema marker or
/// an unsupported version.
pub fn openmetrics_from_value(doc: &Value) -> Result<String, String> {
    let (counters_v, gauges_v, hists_v) = if let Some(v) = doc.get("live_schema") {
        match v.as_u64() {
            Some(LIVE_SCHEMA) => {}
            found => return Err(format!("unsupported live_schema {found:?}")),
        }
        (
            doc.get("counters"),
            doc.get("gauges"),
            doc.get("histograms"),
        )
    } else if let Some(v) = doc.get("schema") {
        match v.as_u64() {
            Some(crate::report::REPORT_SCHEMA) => {}
            found => return Err(format!("unsupported report schema {found:?}")),
        }
        (
            doc.get("counters"),
            doc.get("gauges"),
            doc.get("wall_clock").and_then(|w| w.get("histograms")),
        )
    } else {
        return Err(
            "not a live-status or run-report file (no `live_schema` or `schema` key)".to_owned(),
        );
    };
    let mut counters = u64_entries(counters_v);
    if doc.get("live_schema").is_none() {
        counters.extend(u64_entries(
            doc.get("wall_clock").and_then(|w| w.get("budget")),
        ));
    }
    let gauges = u64_entries(gauges_v);
    let mut histograms = Vec::new();
    if let Some(items) = hists_v.and_then(Value::as_array) {
        for h in items {
            let name = h.get("name").and_then(Value::as_str).unwrap_or("unnamed");
            let u = |k: &str| h.get(k).and_then(Value::as_u64).unwrap_or(0);
            histograms.push((
                name.to_owned(),
                HistogramSummary {
                    count: u("count"),
                    sum: u("sum"),
                    min: u("min"),
                    max: u("max"),
                    p50: u("p50"),
                    p90: u("p90"),
                    p99: u("p99"),
                },
            ));
        }
    }
    Ok(render_openmetrics(&counters, &gauges, &histograms))
}

fn u64_entries(v: Option<&Value>) -> Vec<(String, u64)> {
    match v {
        Some(Value::Object(map)) => map
            .iter()
            .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
            .collect(),
        _ => Vec::new(),
    }
}

/// Escapes free text for an OpenMetrics `HELP` line per the exposition
/// format ABNF: backslash and newline must be escaped (`\\`, `\n`) or a
/// hostile registry name would inject new exposition lines; everything
/// else passes through.
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes a label *value* per the OpenMetrics ABNF: like
/// [`escape_help`] plus the double quote (`\"`), since label values are
/// quoted.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '"' => out.push_str("\\\""),
            other => out.push(other),
        }
    }
    out
}

/// Sanitizes a registry name into an OpenMetrics metric name: `mce_`
/// prefix, every character outside `[a-zA-Z0-9_:]` replaced with `_`.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("mce_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

// ---------------------------------------------------------------------------
// `mce top`: terminal dashboard
// ---------------------------------------------------------------------------

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// A Unicode block sparkline of `values`, scaled to the series' own
/// min..max range (a flat series renders mid-height).
pub(crate) fn sparkline(values: &[u64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let min = *values.iter().min().expect("nonempty");
    let max = *values.iter().max().expect("nonempty");
    values
        .iter()
        .map(|&v| {
            if max == min {
                SPARK[3]
            } else {
                let idx = ((v - min) as f64 / (max - min) as f64 * 7.0).round() as usize;
                SPARK[idx.min(7)]
            }
        })
        .collect()
}

/// A fixed-width `[#####....]` progress bar.
fn progress_bar(done: u64, total: u64, width: usize) -> String {
    let filled = if total == 0 {
        0
    } else {
        (done.min(total) as usize * width) / total as usize
    };
    format!(
        "[{}{}]",
        "#".repeat(filled),
        ".".repeat(width.saturating_sub(filled))
    )
}

/// Renders one parsed live-status snapshot as the `mce top` dashboard:
/// header, progress bar, funnel, cache/budget lines, wall-series
/// sparklines and the per-worker occupancy summary. Plain text — the
/// caller adds screen-clearing escapes in TTY refresh mode, and the
/// same output doubles as the non-TTY single-snapshot mode.
///
/// Rendered for an 80-column terminal; `mce top` re-measures each
/// refresh and calls [`render_dashboard_with_width`].
pub fn render_dashboard(source: &str, doc: &Value) -> String {
    render_dashboard_with_width(source, doc, 80)
}

/// [`render_dashboard`] for a `width`-column terminal: the progress bar
/// and the sparklines scale with the width (never below a usable
/// minimum), so a resized terminal gets a re-fitted frame on the next
/// refresh.
pub fn render_dashboard_with_width(source: &str, doc: &Value, width: usize) -> String {
    // 24 columns at the classic 80; wider terminals grow the bar,
    // narrow ones shrink it down to a floor of 8.
    let bar_width = width.saturating_sub(56).clamp(8, 48);
    let spark_width = width.saturating_sub(40).clamp(8, 120);
    let str_of = |k: &str| doc.get(k).and_then(Value::as_str).unwrap_or("?");
    let u64_of = |k: &str| doc.get(k).and_then(Value::as_u64).unwrap_or(0);
    let nested = |a: &str, b: &str| {
        doc.get(a)
            .and_then(|v| v.get(b))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let mut out = String::new();
    out.push_str(&format!("mce top — `{}` ({source})\n", str_of("workload")));
    let status = str_of("status");
    let mut line = format!(
        "status   {status} ({})  elapsed {:.1}s",
        str_of("phase"),
        doc.get("elapsed_s").and_then(Value::as_f64).unwrap_or(0.0)
    );
    if let Some(reason) = doc.get("stop_reason").and_then(Value::as_str) {
        line.push_str(&format!("  stop_reason {reason}"));
    }
    if let Some(eta) = doc.get("eta").filter(|v| **v != Value::Null) {
        let secs = eta.get("seconds").and_then(Value::as_f64).unwrap_or(0.0);
        let basis = eta.get("basis").and_then(Value::as_str).unwrap_or("?");
        line.push_str(&format!("  eta ~{secs:.0}s ({basis})"));
    }
    out.push_str(&line);
    out.push('\n');
    let (done, total) = (u64_of("archs_done"), u64_of("archs_total"));
    out.push_str(&format!(
        "archs    {} {done}/{total}\n",
        progress_bar(done, total, bar_width)
    ));
    out.push_str(&format!(
        "evals    {:.0} total, {:.1}/s   cache {:.1}% hit\n",
        nested("evals", "total"),
        nested("evals", "per_second"),
        nested("cache", "hit_rate") * 100.0,
    ));
    out.push_str(&format!(
        "funnel   enumerated {:.0} → estimated {:.0} → simulated {:.0}\n",
        nested("candidates", "enumerated"),
        nested("candidates", "estimated"),
        nested("candidates", "simulated"),
    ));
    out.push_str(&format!(
        "frontier size {:.0}  hypervolume {:.4}\n",
        nested("frontier", "size"),
        nested("frontier", "hypervolume"),
    ));
    if let Some(budget) = doc.get("budget") {
        let mut parts = Vec::new();
        if let Some(rem) = budget.get("evals_remaining").and_then(Value::as_u64) {
            match budget.get("max_evals").and_then(Value::as_u64) {
                Some(max) => parts.push(format!("evals left {rem}/{max}")),
                None => parts.push(format!("evals left {rem}")),
            }
        }
        if let Some(d) = budget.get("deadline_s").and_then(Value::as_f64) {
            parts.push(format!("deadline {d:.1}s"));
        }
        parts.push(format!(
            "timeouts {:.0}",
            budget
                .get("timeouts")
                .and_then(Value::as_f64)
                .unwrap_or(0.0)
        ));
        parts.push(format!(
            "degraded {:.0}",
            budget
                .get("degraded")
                .and_then(Value::as_f64)
                .unwrap_or(0.0)
        ));
        out.push_str(&format!("budget   {}\n", parts.join("  ")));
    }
    // Wall-series sparklines: the most informative series first, capped
    // so the dashboard stays one screen tall.
    const PREFERRED: [&str; 4] = [
        "conex.candidates_estimated",
        "conex.simulated",
        "eval_cache.hits",
        "conex.frontier_size_max",
    ];
    if let Some(Value::Object(wall)) = doc.get("series").and_then(|s| s.get("wall")) {
        let mut shown = 0;
        let ordered = PREFERRED
            .iter()
            .filter_map(|&n| wall.get(n).map(|v| (n.to_owned(), v)))
            .chain(
                wall.iter()
                    .filter(|(n, _)| !PREFERRED.contains(&n.as_str()))
                    .map(|(n, v)| (n.clone(), v)),
            );
        for (name, points) in ordered {
            if shown >= 4 {
                break;
            }
            let values: Vec<u64> = points
                .as_array()
                .unwrap_or(&[])
                .iter()
                .filter_map(|p| p.as_array()?.get(1)?.as_u64())
                .collect();
            if values.len() < 2 {
                continue;
            }
            let latest = *values.last().expect("nonempty");
            // Tail-truncate long series so the line fits the terminal;
            // the newest samples are the interesting ones.
            let tail = &values[values.len().saturating_sub(spark_width)..];
            out.push_str(&format!("{name:<28} {} {latest}\n", sparkline(tail)));
            shown += 1;
        }
    }
    // Worker lanes: the per-worker occupancy distribution, when present.
    if let Some(hists) = doc.get("histograms").and_then(Value::as_array) {
        for h in hists {
            if h.get("name").and_then(Value::as_str) == Some("par.worker_occupancy_pct") {
                let u = |k: &str| h.get(k).and_then(Value::as_u64).unwrap_or(0);
                out.push_str(&format!(
                    "workers  occupancy p50 {}% p90 {}% (over {} lane spans)\n",
                    u("p50"),
                    u("p90"),
                    u("count")
                ));
            }
        }
    }
    out
}

/// Renders the `mce top <swarm-dir>` overview: the supervisor's
/// `swarm.json` summary — lease progress, restart/steal/backoff totals,
/// one line per worker slot — followed by one progress line per worker
/// whose live-status file currently parses (`workers` pairs a file name
/// with its parsed document, in slot order).
pub fn render_swarm_overview(
    source: &str,
    swarm_doc: &Value,
    workers: &[(String, Value)],
    width: usize,
) -> String {
    let bar_width = width.saturating_sub(56).clamp(8, 48);
    let str_of = |k: &str| swarm_doc.get(k).and_then(Value::as_str).unwrap_or("?");
    let u64_of = |k: &str| swarm_doc.get(k).and_then(Value::as_u64).unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "mce top — swarm `{}` ({source})\n",
        str_of("workload")
    ));
    let (done, total) = (u64_of("leases_done"), u64_of("leases_total"));
    out.push_str(&format!(
        "status   {}  {} workers\n",
        str_of("status"),
        u64_of("workers")
    ));
    out.push_str(&format!(
        "leases   {} {done}/{total}\n",
        progress_bar(done, total, bar_width)
    ));
    out.push_str(&format!(
        "faults   restarts {}  leases stolen {}  backoff {} ms\n",
        u64_of("restarts"),
        u64_of("leases_stolen"),
        u64_of("backoff_ms")
    ));
    if let Some(slots) = swarm_doc.get("slots").and_then(Value::as_array) {
        for slot in slots {
            let u = |k: &str| slot.get(k).and_then(Value::as_u64);
            let state = slot.get("state").and_then(Value::as_str).unwrap_or("?");
            let lease = u("lease").map_or_else(|| "-".to_owned(), |l| l.to_string());
            out.push_str(&format!(
                "slot {:>3}  {state:<8} lease {lease:<4} restarts {}\n",
                u("slot").unwrap_or(0),
                u("restarts").unwrap_or(0)
            ));
        }
    }
    // One progress line per worker that has published a status file —
    // the same fields the full dashboard leads with.
    for (name, doc) in workers {
        let status = doc.get("status").and_then(Value::as_str).unwrap_or("?");
        let phase = doc.get("phase").and_then(Value::as_str).unwrap_or("?");
        let done = doc.get("archs_done").and_then(Value::as_u64).unwrap_or(0);
        let total = doc.get("archs_total").and_then(Value::as_u64).unwrap_or(0);
        let evals = doc
            .get("evals")
            .and_then(|e| e.get("per_second"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "{name:<24} {status:<9} {phase:<7} archs {done}/{total}  {evals:.1} evals/s\n"
        ));
    }
    out
}

/// Renders the `mce top <serve-dir>` overview: the daemon's `serve.json`
/// summary — pid, bound address, drain state, per-state job counts —
/// followed by one progress line per job whose live-status file
/// currently parses (`jobs` pairs a file name with its parsed document,
/// in job-id order).
pub fn render_serve_overview(source: &str, serve_doc: &Value, jobs: &[(String, Value)]) -> String {
    let mut out = String::new();
    let draining = serve_doc.get("draining") == Some(&Value::Bool(true));
    out.push_str(&format!("mce top — serve ({source})\n"));
    out.push_str(&format!(
        "status   {}  pid {}  {}\n",
        if draining { "draining" } else { "serving" },
        serve_doc.get("pid").and_then(Value::as_u64).unwrap_or(0),
        serve_doc.get("addr").and_then(Value::as_str).unwrap_or("?"),
    ));
    let mut counts = format!(
        "jobs     total {}",
        serve_doc.get("total").and_then(Value::as_u64).unwrap_or(0)
    );
    if let Some(Value::Object(map)) = serve_doc.get("jobs") {
        for (state, n) in map {
            counts.push_str(&format!("  {state} {}", n.as_u64().unwrap_or(0)));
        }
    }
    counts.push('\n');
    out.push_str(&counts);
    // One progress line per job with a live-status file — same fields as
    // the swarm worker rows.
    for (name, doc) in jobs {
        let status = doc.get("status").and_then(Value::as_str).unwrap_or("?");
        let phase = doc.get("phase").and_then(Value::as_str).unwrap_or("?");
        let done = doc.get("archs_done").and_then(Value::as_u64).unwrap_or(0);
        let total = doc.get("archs_total").and_then(Value::as_u64).unwrap_or(0);
        let evals = doc
            .get("evals")
            .and_then(|e| e.get("per_second"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "{name:<24} {status:<9} {phase:<7} archs {done}/{total}  {evals:.1} evals/s\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_obs::json;

    fn sample_status() -> String {
        let shared = LiveShared::new("vocoder", 4, Some(2_000), Some(30.0), None);
        shared.set_archs_total(10);
        let state = Phase1State {
            archs_done: 3,
            frontier_evolution: vec![mce_conex::FrontierSnapshot {
                archs_explored: 3,
                estimated: 90,
                frontier_size: 7,
                hypervolume: 0.42,
            }],
            ..Phase1State::default()
        };
        shared.record_arch(&state);
        shared.to_json()
    }

    #[test]
    fn live_status_parses_and_carries_schema_and_progress() {
        let text = sample_status();
        let doc = json::parse(&text).expect("live status parses");
        assert_eq!(
            doc.get("live_schema").and_then(Value::as_u64),
            Some(LIVE_SCHEMA)
        );
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("running"));
        assert_eq!(doc.get("phase").and_then(Value::as_str), Some("phase1"));
        assert_eq!(doc.get("archs_done").and_then(Value::as_u64), Some(3));
        assert_eq!(doc.get("archs_total").and_then(Value::as_u64), Some(10));
        assert_eq!(
            doc.get("frontier")
                .and_then(|f| f.get("size"))
                .and_then(Value::as_u64),
            Some(7)
        );
        assert_eq!(
            doc.get("budget")
                .and_then(|b| b.get("max_evals"))
                .and_then(Value::as_u64),
            Some(2000)
        );
        // Two bounds are active (archs rate, 30s deadline); whichever
        // projects sooner, an ETA exists from the first snapshot.
        let eta = doc.get("eta").expect("eta key");
        let basis = eta.get("basis").and_then(Value::as_str);
        assert!(
            matches!(basis, Some("archs") | Some("deadline")),
            "unexpected eta basis {basis:?}:\n{text}"
        );
        for key in ["counters", "gauges", "histograms", "series", "writes"] {
            assert!(doc.get(key).is_some(), "missing {key}:\n{text}");
        }
    }

    #[test]
    fn finish_marks_status_and_reason() {
        let shared = LiveShared::new("vocoder", 1, None, None, None);
        shared.finish(true, Some("max-evals"));
        let doc = json::parse(&shared.to_json()).unwrap();
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("truncated"));
        assert_eq!(
            doc.get("stop_reason").and_then(Value::as_str),
            Some("max-evals")
        );
        assert_eq!(doc.get("phase").and_then(Value::as_str), Some("done"));
    }

    #[test]
    fn eta_prefers_the_soonest_bound() {
        // Deadline of 0 seconds: already due, so it beats any
        // architecture-rate projection.
        let shared = LiveShared::new("w", 1, None, Some(0.0), None);
        shared.set_archs_total(100);
        let state = Phase1State {
            archs_done: 1,
            ..Phase1State::default()
        };
        shared.record_arch(&state);
        let (eta, basis) = shared.eta().expect("two active bounds");
        assert_eq!(basis, "deadline");
        assert_eq!(eta, 0.0);
        // With no bounds and no progress there is nothing to project.
        let idle = LiveShared::new("w", 1, None, None, None);
        assert!(idle.eta().is_none());
    }

    #[test]
    fn failed_publish_is_tallied_not_propagated() {
        let shared = LiveShared::new("w", 1, None, None, None);
        let bad = Path::new("/nonexistent-dir-for-sure/status.json");
        assert!(!shared.publish(bad), "write to a missing dir fails");
        let doc = json::parse(&shared.to_json()).unwrap();
        assert_eq!(
            doc.get("writes")
                .and_then(|w| w.get("failed"))
                .and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn openmetrics_renders_all_family_types() {
        let text = render_openmetrics(
            &[("conex.simulated".to_owned(), 24)],
            &[("conex.frontier_size_max".to_owned(), 7)],
            &[(
                "par.worker_span_us".to_owned(),
                HistogramSummary {
                    count: 8,
                    sum: 800,
                    min: 50,
                    max: 200,
                    p50: 90,
                    p90: 150,
                    p99: 190,
                },
            )],
        );
        for needle in [
            "# TYPE mce_conex_simulated counter",
            "mce_conex_simulated_total 24",
            "# TYPE mce_conex_frontier_size_max gauge",
            "mce_conex_frontier_size_max 7",
            "# TYPE mce_par_worker_span_us summary",
            "mce_par_worker_span_us{quantile=\"0.9\"} 150",
            "mce_par_worker_span_us_count 8",
            "mce_par_worker_span_us_sum 800",
        ] {
            assert!(text.contains(needle), "missing {needle:?}:\n{text}");
        }
        assert!(text.ends_with("# EOF\n"), "terminator required:\n{text}");
        // Dots sanitized: no raw registry names leak into metric names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let metric = line.split([' ', '{']).next().unwrap();
            assert!(
                metric
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "illegal metric name in {line:?}"
            );
        }
    }

    #[test]
    fn openmetrics_escapes_hostile_names_in_help_and_labels() {
        // Registry names are programmer-chosen, but a hostile or buggy
        // one must not be able to inject exposition lines through HELP
        // text (the metric name itself is sanitized separately).
        let hostile = "evil\\name\nfake_metric{label=\"x\"} 1".to_owned();
        let text = render_openmetrics(&[(hostile, 5)], &[], &[]);
        // Every line is either a comment or starts with the sanitized
        // mce_ name — the injected line never reaches column zero.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.starts_with("mce_"),
                "injected exposition line: {line:?}\n{text}"
            );
        }
        // The HELP line carries the escaped forms, never a raw newline
        // or backslash.
        let help = text
            .lines()
            .find(|l| l.starts_with("# HELP"))
            .expect("has HELP");
        assert!(help.contains("evil\\\\name"), "{help}");
        assert!(help.contains("\\n"), "{help}");
        assert_eq!(text.matches("# HELP").count(), 1);
        // Label values escape quotes and backslashes too.
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_help("plain_name"), "plain_name");
    }

    #[test]
    fn dashboard_scales_bar_and_sparklines_to_terminal_width() {
        let doc = json::parse(
            "{\"live_schema\": 1, \"workload\": \"vocoder\", \"status\": \"running\", \
             \"phase\": \"phase1\", \"archs_done\": 5, \"archs_total\": 10, \
             \"elapsed_s\": 1.0, \"series\": {\"wall\": {\"conex.simulated\": \
             [[1000, 1], [2000, 2], [3000, 3], [4000, 4], [5000, 5], [6000, 6], \
             [7000, 7], [8000, 8], [9000, 9], [10000, 10], [11000, 11], [12000, 12]]}}}",
        )
        .unwrap();
        // The default render equals the explicit 80-column render.
        assert_eq!(
            render_dashboard("s.json", &doc),
            render_dashboard_with_width("s.json", &doc, 80)
        );
        let narrow = render_dashboard_with_width("s.json", &doc, 40);
        let wide = render_dashboard_with_width("s.json", &doc, 120);
        let bar_len = |text: &str| {
            text.lines()
                .find(|l| l.starts_with("archs"))
                .and_then(|l| Some(l.find(']')? - l.find('[')?))
                .expect("has progress bar")
        };
        assert_eq!(bar_len(&narrow), 9, "floor of 8 cells + bracket");
        assert_eq!(bar_len(&wide), 49, "120 cols grow the bar to 48 cells");
        // The 12-sample series is tail-truncated at narrow widths.
        let spark_len = |text: &str| {
            text.lines()
                .find(|l| l.starts_with("conex.simulated"))
                .map(|l| l.chars().filter(|c| SPARK.contains(c)).count())
                .expect("has sparkline")
        };
        assert_eq!(spark_len(&narrow), 8);
        assert_eq!(spark_len(&wide), 12, "all samples fit at 120 columns");
        // The newest samples survive truncation: the narrow line still
        // ends at the series maximum.
        assert!(narrow
            .lines()
            .find(|l| l.starts_with("conex.simulated"))
            .unwrap()
            .contains('█'));
    }

    #[test]
    fn openmetrics_from_live_and_report_documents() {
        let live = json::parse(&sample_status()).unwrap();
        let text = openmetrics_from_value(&live).expect("live file exports");
        assert!(text.ends_with("# EOF\n"));
        let report = json::parse(
            "{\"schema\": 1, \"counters\": {\"conex.simulated\": 9}, \
             \"gauges\": {\"g.max\": 2}, \"wall_clock\": {\"budget\": \
             {\"budget.timeouts\": 3}, \"histograms\": [{\"name\": \"h.us\", \
             \"count\": 1, \"sum\": 5, \"min\": 5, \"max\": 5, \"p50\": 5, \
             \"p90\": 5, \"p99\": 5}]}}",
        )
        .unwrap();
        let text = openmetrics_from_value(&report).expect("report file exports");
        for needle in [
            "mce_conex_simulated_total 9",
            "mce_budget_timeouts_total 3",
            "mce_g_max 2",
            "mce_h_us_count 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?}:\n{text}");
        }
        let neither = json::parse("{\"something\": 1}").unwrap();
        let err = openmetrics_from_value(&neither).unwrap_err();
        assert!(err.contains("live_schema"), "{err}");
        let wrong = json::parse("{\"live_schema\": 99}").unwrap();
        assert!(openmetrics_from_value(&wrong).is_err());
    }

    #[test]
    fn dashboard_renders_progress_sparklines_and_workers() {
        let doc = json::parse(
            "{\"live_schema\": 1, \"workload\": \"vocoder\", \"status\": \"running\", \
             \"stop_reason\": null, \"phase\": \"phase1\", \"archs_done\": 5, \
             \"archs_total\": 10, \
             \"candidates\": {\"enumerated\": 120, \"estimated\": 100, \"simulated\": 24}, \
             \"evals\": {\"total\": 100, \"per_second\": 50.0}, \
             \"cache\": {\"hits\": 25, \"misses\": 75, \"hit_rate\": 0.25}, \
             \"budget\": {\"max_evals\": 2000, \"evals_remaining\": 1900, \
             \"deadline_s\": null, \"timeouts\": 0, \"degraded\": 0}, \
             \"frontier\": {\"size\": 7, \"hypervolume\": 0.42}, \
             \"eta\": {\"seconds\": 13.2, \"basis\": \"archs\"}, \
             \"elapsed_s\": 2.5, \"threads\": 4, \
             \"writes\": {\"attempted\": 3, \"failed\": 0}, \
             \"counters\": {}, \"gauges\": {}, \
             \"histograms\": [{\"name\": \"par.worker_occupancy_pct\", \"count\": 8, \
             \"sum\": 700, \"min\": 80, \"max\": 100, \"p50\": 93, \"p90\": 99, \
             \"p99\": 100}], \
             \"series\": {\"logical\": {}, \"wall\": {\"conex.simulated\": \
             [[1000, 2], [2000, 9], [3000, 24]]}}}",
        )
        .unwrap();
        let text = render_dashboard("status.json", &doc);
        for needle in [
            "vocoder",
            "status   running (phase1)",
            "5/10",
            "eta ~13s (archs)",
            "cache 25.0% hit",
            "enumerated 120 → estimated 100 → simulated 24",
            "evals left 1900/2000",
            "hypervolume 0.4200",
            "conex.simulated",
            "workers  occupancy p50 93% p90 99%",
        ] {
            assert!(text.contains(needle), "missing {needle:?}:\n{text}");
        }
        assert!(
            text.contains('▁') && text.contains('█'),
            "sparkline rendered:\n{text}"
        );
    }

    #[test]
    fn sparkline_and_progress_bar_handle_edges() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5, 5, 5]), "▄▄▄");
        let line = sparkline(&[0, 7]);
        assert_eq!(line.chars().next(), Some('▁'));
        assert_eq!(line.chars().last(), Some('█'));
        assert_eq!(progress_bar(0, 10, 4), "[....]");
        assert_eq!(progress_bar(10, 10, 4), "[####]");
        assert_eq!(progress_bar(5, 0, 4), "[....]", "zero total never divides");
    }
}
