//! Supervised multi-process exploration: `mce swarm -j N`.
//!
//! A swarm run partitions the Phase-I architecture space into contiguous
//! **leases**, spawns N worker subprocesses that each run the existing
//! bounded, checkpointed exploration over their claimed range
//! ([`ExplorationSession::arch_range`]), and merges the workers' shards
//! back into one [`RunReport`] that is byte-identical (up to its
//! `wall_clock` section and the effort metrics `mce diff` already
//! masks) to a single-process run of the same workload and preset.
//!
//! The robustness contract, in order of line of defense:
//!
//! 1. **Crash detection** — the supervisor polls each worker with
//!    `try_wait` *and* watches its heartbeat file: a worker that exits
//!    nonzero, exits without a valid shard, or whose heartbeat sequence
//!    number stops advancing for longer than the staleness timeout is
//!    declared dead (a stalled worker is killed first).
//! 2. **Work-stealing resume** — a dead worker's lease goes back on the
//!    pending queue together with its on-disk checkpoint; whichever
//!    slot claims it next resumes *through the restored cache* exactly
//!    as `mce explore --checkpoint` does, so no committed architecture
//!    is ever recomputed and the merged result is unchanged.
//! 3. **Crash-loop backoff** — every restart of a slot doubles its
//!    pre-spawn delay ([`backoff_after`]) up to a cap, and a slot that
//!    exceeds its restart budget is **retired** rather than respawned.
//! 4. **Graceful degradation** — if every slot retires with leases
//!    still pending, the supervisor runs the remainder inline in its
//!    own process; the run still completes and still merges clean.
//!
//! Everything the supervisor learns is observable: `swarm.restarts`,
//! `swarm.leases_stolen` and `swarm.backoff_ms` counters flow through
//! the merged report (masked as effort metrics in `mce diff`), the
//! lease manifest and per-worker live-status files land in the swarm
//! directory (`mce top <dir>` aggregates them), and every supervision
//! event is appended to `swarm.log`.
//!
//! [`ExplorationSession::arch_range`]: crate::session::ExplorationSession::arch_range
//! [`RunReport`]: crate::report::RunReport

use crate::checkpoint::{config_digest, fnv128};
use crate::report::RunReport;
use crate::session::ExplorationSession;
use mce_apex::{ApexConfig, ApexExplorer};
use mce_appmodel::{TraceBlocks, Workload};
use mce_conex::design_point::workload_digest;
use mce_conex::eval_cache::DEFAULT_CAPACITY;
use mce_conex::{
    merge_arch_slices, ArchSlice, ConexConfig, ConexExplorer, ConexResult, EvalCache, EvalEngine,
};
use mce_connlib::ConnectivityLibrary;
use mce_error::{atomic_write, sweep_stale_tmps, MceError};
use mce_obs as obs;
use mce_obs::json::Value;
use mce_sim::Preset;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Version of the lease-manifest layout (`manifest.json` header key
/// `"mce_manifest"`).
pub const MANIFEST_SCHEMA: u64 = 1;
/// Version of the worker-shard layout (`lease-N.shard.json` header key
/// `"mce_shard"`).
pub const SHARD_SCHEMA: u64 = 1;
/// Version of the supervisor's live summary (`swarm.json`, first key
/// `"swarm_schema"`), aggregated by `mce top <dir>`.
pub const SWARM_STATUS_SCHEMA: u64 = 1;

// ---------------------------------------------------------------------------
// Swarm-directory layout
// ---------------------------------------------------------------------------

/// The lease manifest: `<dir>/manifest.json`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

/// The supervisor's live summary: `<dir>/swarm.json`.
pub fn status_path(dir: &Path) -> PathBuf {
    dir.join("swarm.json")
}

/// The supervision event log (worker stdout/stderr included):
/// `<dir>/swarm.log`.
pub fn log_path(dir: &Path) -> PathBuf {
    dir.join("swarm.log")
}

/// A lease's result shard: `<dir>/lease-N.shard.json`.
pub fn shard_path(dir: &Path, lease: usize) -> PathBuf {
    dir.join(format!("lease-{lease}.shard.json"))
}

/// A lease's evaluation-cache spill: `<dir>/lease-N.cache.json`.
pub fn lease_cache_path(dir: &Path, lease: usize) -> PathBuf {
    dir.join(format!("lease-{lease}.cache.json"))
}

/// A lease's crash-safety checkpoint: `<dir>/lease-N.ck.json`. Survives
/// the worker that wrote it — the next claimant resumes from it.
pub fn lease_checkpoint_path(dir: &Path, lease: usize) -> PathBuf {
    dir.join(format!("lease-{lease}.ck.json"))
}

/// A worker slot's heartbeat file: `<dir>/worker-K.hb.json`.
pub fn heartbeat_path(dir: &Path, slot: usize) -> PathBuf {
    dir.join(format!("worker-{slot}.hb.json"))
}

/// A worker slot's live-status file: `<dir>/worker-K.status.json`.
pub fn worker_status_path(dir: &Path, slot: usize) -> PathBuf {
    dir.join(format!("worker-{slot}.status.json"))
}

// ---------------------------------------------------------------------------
// Digest-framed files (manifest + shard)
// ---------------------------------------------------------------------------

/// Frames `body` with the one-line digest header the checkpoint format
/// established: readers verify before trusting a single byte.
fn frame(tag: &str, body: &str) -> String {
    format!(
        "{{\"{tag}\":1,\"digest\":\"{}\"}}\n{body}",
        fnv128(body.as_bytes())
    )
}

/// Verifies the digest header and returns the body, or a typed error
/// naming what was wrong — corruption is never silently absorbed.
fn unframe<'a>(tag: &str, what: &str, text: &'a str) -> Result<&'a str, MceError> {
    let (header, body) = text
        .split_once('\n')
        .ok_or_else(|| MceError::checkpoint(format!("{what}: missing digest header")))?;
    let doc = obs::json::parse(header)
        .map_err(|e| MceError::checkpoint(format!("{what}: corrupt digest header: {e}")))?;
    match doc.get(tag).and_then(Value::as_u64) {
        Some(1) => {}
        found => {
            return Err(MceError::schema_version(
                what.to_owned(),
                found.map_or_else(|| "none".to_owned(), |v| v.to_string()),
                1,
            ))
        }
    }
    let digest = doc
        .get("digest")
        .and_then(Value::as_str)
        .ok_or_else(|| MceError::checkpoint(format!("{what}: digest header carries no digest")))?;
    if digest != fnv128(body.as_bytes()) {
        return Err(MceError::checkpoint(format!(
            "{what}: digest mismatch — the file is corrupt or truncated"
        )));
    }
    Ok(body)
}

// ---------------------------------------------------------------------------
// Lease manifest
// ---------------------------------------------------------------------------

/// Where one lease is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseState {
    /// Waiting on the pending queue for a slot to claim it.
    Pending,
    /// Claimed — a worker (or the supervisor, inline) is exploring it.
    Running,
    /// Its shard landed and verified.
    Done,
}

/// One contiguous half-open range `start..end` of the global Phase-I
/// architecture order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// Manifest index; also the lease's file-name key.
    pub id: usize,
    /// First global architecture index covered (inclusive).
    pub start: usize,
    /// One past the last covered index.
    pub end: usize,
    /// Lifecycle state.
    pub state: LeaseState,
    /// How many times the lease has been claimed (1 on a clean run;
    /// more after crashes).
    pub attempts: u32,
}

/// The digest-framed record of how a swarm run partitioned its work —
/// `manifest.json` in the swarm directory. Rewritten atomically on every
/// lease transition, so an observer (or a post-mortem) always sees a
/// coherent partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseManifest {
    /// [`MANIFEST_SCHEMA`].
    pub schema: u64,
    /// Canonical digest of the workload being explored.
    pub workload_digest: String,
    /// Configuration digest shared by every lease (the base digest,
    /// without any per-lease `|range:` suffix).
    pub config_digest: String,
    /// Worker slots the supervisor was asked to run.
    pub workers: usize,
    /// Total Phase-I architectures partitioned.
    pub total_archs: usize,
    /// The leases, in id order, jointly covering `0..total_archs`.
    pub leases: Vec<Lease>,
}

impl LeaseManifest {
    /// Serializes as the digest-framed manifest document.
    pub fn to_json(&self) -> Result<String, MceError> {
        let body =
            serde_json::to_string_pretty(self).map_err(|e| MceError::json("lease manifest", e))?;
        Ok(frame("mce_manifest", &body))
    }

    /// Parses and validates a manifest: digest verified, schema checked,
    /// leases required to partition `0..total_archs` contiguously in id
    /// order. A manifest that fails any check is rejected whole — a
    /// bit-flipped range must never silently re-aim a worker.
    pub fn from_json(text: &str) -> Result<Self, MceError> {
        let body = unframe("mce_manifest", "lease manifest", text)?;
        let m: LeaseManifest = serde_json::from_str(body)
            .map_err(|e| MceError::checkpoint(format!("lease manifest: invalid body: {e}")))?;
        if m.schema != MANIFEST_SCHEMA {
            return Err(MceError::schema_version(
                "lease manifest".to_owned(),
                m.schema.to_string(),
                MANIFEST_SCHEMA,
            ));
        }
        let mut cursor = 0usize;
        for (i, lease) in m.leases.iter().enumerate() {
            if lease.id != i || lease.start != cursor || lease.end <= lease.start {
                return Err(MceError::checkpoint(format!(
                    "lease manifest: lease {i} does not continue the partition \
                     (id {}, range {}..{}, expected start {cursor})",
                    lease.id, lease.start, lease.end
                )));
            }
            cursor = lease.end;
        }
        if cursor != m.total_archs {
            return Err(MceError::checkpoint(format!(
                "lease manifest: leases cover 0..{cursor} but the run has {} architectures",
                m.total_archs
            )));
        }
        Ok(m)
    }

    /// Atomically writes the manifest to `path`.
    pub fn save(&self, path: &Path) -> Result<(), MceError> {
        atomic_write(path, self.to_json()?.as_bytes())
    }

    /// Loads and validates the manifest at `path`.
    pub fn load(path: &Path) -> Result<Self, MceError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| MceError::io(format!("read lease manifest {}", path.display()), e))?;
        Self::from_json(&text)
    }
}

/// Splits `0..total_archs` into `count` contiguous leases of
/// near-equal size (the first `total % count` leases are one longer),
/// all `Pending`. `count` is clamped to `1..=total_archs`; zero
/// architectures yield zero leases.
pub fn partition_leases(total_archs: usize, count: usize) -> Vec<Lease> {
    if total_archs == 0 {
        return Vec::new();
    }
    let count = count.clamp(1, total_archs);
    let (base, extra) = (total_archs / count, total_archs % count);
    let mut leases = Vec::with_capacity(count);
    let mut cursor = 0usize;
    for id in 0..count {
        let len = base + usize::from(id < extra);
        leases.push(Lease {
            id,
            start: cursor,
            end: cursor + len,
            state: LeaseState::Pending,
            attempts: 0,
        });
        cursor += len;
    }
    leases
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

/// One worker liveness beat: a tiny single-line JSON document rewritten
/// atomically on a fixed cadence. Only `seq` advancing matters to the
/// supervisor; `pid` and `lease` make post-mortems readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// The beating process.
    pub pid: u32,
    /// The lease it is exploring.
    pub lease: usize,
    /// Monotonic beat counter, starting at 1.
    pub seq: u64,
}

/// Atomically publishes a beat. Best-effort like live status: a failed
/// write must never take the worker down (the supervisor just sees a
/// stale beat and, eventually, a healthy exit).
pub fn write_heartbeat(path: &Path, hb: Heartbeat) -> bool {
    let body = format!(
        "{{\"swarm_heartbeat\":1,\"pid\":{},\"lease\":{},\"seq\":{}}}\n",
        hb.pid, hb.lease, hb.seq
    );
    atomic_write(path, body.as_bytes()).is_ok()
}

/// Reads a beat; `None` for a missing, torn, or otherwise malformed
/// file. A corrupt heartbeat is simply *no beat* — staleness detection
/// treats it the same as silence, which is the conservative reading.
pub fn read_heartbeat(path: &Path) -> Option<Heartbeat> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = obs::json::parse(&text).ok()?;
    if doc.get("swarm_heartbeat").and_then(Value::as_u64) != Some(1) {
        return None;
    }
    let pid = u32::try_from(doc.get("pid").and_then(Value::as_u64)?).ok()?;
    let lease = usize::try_from(doc.get("lease").and_then(Value::as_u64)?).ok()?;
    let seq = doc.get("seq").and_then(Value::as_u64)?;
    Some(Heartbeat { pid, lease, seq })
}

/// Exponential crash-loop backoff: the delay before a slot's
/// `restarts`-th respawn is `base * 2^(restarts-1)`, saturating at
/// `cap`. Deterministic — no jitter — so supervision timelines are
/// reproducible in tests.
pub fn backoff_after(restarts: u32, base: Duration, cap: Duration) -> Duration {
    if restarts == 0 {
        return Duration::ZERO;
    }
    // 2^exp saturates well past any real cap; 30 doublings of even 1ms
    // exceed 12 days.
    let exp = restarts.saturating_sub(1).min(30);
    cap.min(base.saturating_mul(1u32 << exp))
}

// ---------------------------------------------------------------------------
// Worker shards
// ---------------------------------------------------------------------------

/// One named registry value. (A named struct, not a tuple, so the shard
/// body stays schema-evolvable and unambiguous in JSON.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedMetric {
    /// Metric name, e.g. `conex.candidates_enumerated`.
    pub name: String,
    /// Final value in the worker's registry.
    pub value: u64,
}

/// What one completed lease ships back to the supervisor: the
/// per-architecture Phase-I slices plus the worker's final
/// counter/gauge registries. Digest-framed like the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerShard {
    /// [`SHARD_SCHEMA`].
    pub schema: u64,
    /// Canonical digest of the workload the worker explored.
    pub workload_digest: String,
    /// Base configuration digest (no `|range:` suffix) — must match the
    /// supervisor's, or the shard merges garbage.
    pub config_digest: String,
    /// The lease this shard settles.
    pub lease: usize,
    /// First global architecture index covered.
    pub start: usize,
    /// One past the last covered index.
    pub end: usize,
    /// One slice per architecture in `start..end`, global indices.
    pub archs: Vec<ArchSlice>,
    /// The worker's final counter registry.
    pub counters: Vec<NamedMetric>,
    /// The worker's final gauge registry.
    pub gauges: Vec<NamedMetric>,
}

impl WorkerShard {
    /// Serializes as the digest-framed shard document.
    pub fn to_json(&self) -> Result<String, MceError> {
        let body = serde_json::to_string(self).map_err(|e| MceError::json("worker shard", e))?;
        Ok(frame("mce_shard", &body))
    }

    /// Parses and validates a shard: digest verified, schema checked,
    /// and the slices required to cover `start..end` exactly once.
    pub fn from_json(text: &str) -> Result<Self, MceError> {
        let body = unframe("mce_shard", "worker shard", text)?;
        let s: WorkerShard = serde_json::from_str(body)
            .map_err(|e| MceError::checkpoint(format!("worker shard: invalid body: {e}")))?;
        if s.schema != SHARD_SCHEMA {
            return Err(MceError::schema_version(
                "worker shard".to_owned(),
                s.schema.to_string(),
                SHARD_SCHEMA,
            ));
        }
        if s.start >= s.end || s.archs.len() != s.end - s.start {
            return Err(MceError::checkpoint(format!(
                "worker shard: lease {} claims {}..{} but carries {} slices",
                s.lease,
                s.start,
                s.end,
                s.archs.len()
            )));
        }
        let mut seen = vec![false; s.end - s.start];
        for a in &s.archs {
            let covered = a
                .arch
                .checked_sub(s.start)
                .and_then(|i| seen.get_mut(i))
                .filter(|taken| !**taken);
            match covered {
                Some(taken) => *taken = true,
                None => {
                    return Err(MceError::checkpoint(format!(
                        "worker shard: slice {} is outside (or duplicated within) lease {}..{}",
                        a.arch, s.start, s.end
                    )))
                }
            }
        }
        Ok(s)
    }

    /// Atomically writes the shard to `path`.
    pub fn save(&self, path: &Path) -> Result<(), MceError> {
        atomic_write(path, self.to_json()?.as_bytes())
    }

    /// Loads and validates the shard at `path`.
    pub fn load(path: &Path) -> Result<Self, MceError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| MceError::io(format!("read worker shard {}", path.display()), e))?;
        Self::from_json(&text)
    }
}

// ---------------------------------------------------------------------------
// Lease execution (worker process, and the supervisor's inline fallback)
// ---------------------------------------------------------------------------

/// One lease-execution request: which range, under which identity.
#[derive(Debug, Clone)]
pub struct LeaseRun {
    /// Lease id — keys every per-lease file.
    pub lease: usize,
    /// First global architecture index.
    pub start: usize,
    /// One past the last.
    pub end: usize,
    /// Worker slot, for heartbeat/status file naming; `None` when the
    /// supervisor runs the lease inline (no heartbeat — the supervisor
    /// cannot outlive itself).
    pub slot: Option<usize>,
    /// Heartbeat cadence.
    pub heartbeat_every: Duration,
}

struct HeartbeatThread {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl HeartbeatThread {
    fn start(path: PathBuf, lease: usize, every: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let thread = std::thread::spawn(move || {
            let pid = std::process::id();
            let mut seq = 0u64;
            while !flag.load(Ordering::Relaxed) {
                seq += 1;
                // The stall_heartbeat fault suppresses publication while
                // the worker keeps running — exactly the failure mode
                // staleness detection exists for.
                #[cfg(feature = "fault-injection")]
                let suppressed = mce_faultinject::on_heartbeat();
                #[cfg(not(feature = "fault-injection"))]
                let suppressed = false;
                if !suppressed {
                    write_heartbeat(&path, Heartbeat { pid, lease, seq });
                }
                std::thread::sleep(every);
            }
        });
        HeartbeatThread { stop, thread }
    }

    fn finish(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.thread.join();
    }
}

/// Runs one lease to completion and writes its shard: the worker
/// subprocess's entire job, and the supervisor's inline fallback.
///
/// The session runs with [`ExplorationSession::arch_range`] +
/// [`ExplorationSession::capture_slices`], checkpoints to the lease's
/// checkpoint file (so a successor resumes a dead claimant's progress)
/// and spills its evaluation cache for the supervisor's merge. Before
/// running, every non-`apex.`/`swarm.` registry entry is zeroed so the
/// shard's registries describe exactly this lease — a no-op in a fresh
/// worker process, essential for inline runs inside the supervisor.
pub fn run_lease(
    workload: &Workload,
    preset: Preset,
    threads: usize,
    dir: &Path,
    spec: &LeaseRun,
) -> Result<(), MceError> {
    if obs::tracing_enabled() {
        for (name, _) in obs::counters_snapshot() {
            if !name.starts_with("apex.") && !name.starts_with("swarm.") {
                obs::counter_restore(name, 0);
            }
        }
        for (name, _) in obs::gauges_snapshot() {
            if !name.starts_with("apex.") && !name.starts_with("swarm.") {
                obs::gauge_restore(name, 0);
            }
        }
    }
    let mut session = ExplorationSession::new(workload.clone())
        .preset(preset)
        .threads(threads)
        .arch_range(spec.start, spec.end)
        .capture_slices(true)
        .checkpoint_file(lease_checkpoint_path(dir, spec.lease))
        .eval_cache_file(lease_cache_path(dir, spec.lease));
    if let Some(slot) = spec.slot {
        session = session.live_status_file(worker_status_path(dir, slot));
    }
    let heartbeat = spec.slot.map(|slot| {
        HeartbeatThread::start(heartbeat_path(dir, slot), spec.lease, spec.heartbeat_every)
    });
    let outcome = session.run();
    if let Some(hb) = heartbeat {
        hb.finish();
    }
    let result = outcome?;
    if result.conex.is_truncated() {
        return Err(MceError::checkpoint(
            "lease run was truncated — swarm leases must run unbounded",
        ));
    }
    let archs = result
        .arch_slices
        .ok_or_else(|| MceError::checkpoint("lease run captured no architecture slices"))?;
    let named = |entries: Vec<(&'static str, u64)>| {
        entries
            .into_iter()
            .map(|(name, value)| NamedMetric {
                name: name.to_owned(),
                value,
            })
            .collect()
    };
    let (counters, gauges) = if obs::tracing_enabled() {
        (
            named(obs::counters_snapshot()),
            named(obs::gauges_snapshot()),
        )
    } else {
        (Vec::new(), Vec::new())
    };
    let shard = WorkerShard {
        schema: SHARD_SCHEMA,
        workload_digest: workload_digest(workload).to_hex(),
        config_digest: base_config_digest(preset),
        lease: spec.lease,
        start: spec.start,
        end: spec.end,
        archs,
        counters,
        gauges,
    };
    shard.save(&shard_path(dir, spec.lease))
}

fn base_config_digest(preset: Preset) -> String {
    config_digest(
        &ApexConfig::preset(preset),
        &ConexConfig::preset(preset),
        &ConnectivityLibrary::amba(),
        DEFAULT_CAPACITY,
    )
}

// ---------------------------------------------------------------------------
// The supervisor
// ---------------------------------------------------------------------------

/// Everything `mce swarm` needs to supervise one run.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// The workload to explore.
    pub workload: Workload,
    /// The CLI workload operand (builtin name or file path), re-passed
    /// verbatim to worker subprocesses.
    pub workload_arg: String,
    /// Exploration scale for both stages.
    pub preset: Preset,
    /// Worker slots (`-j`).
    pub workers: usize,
    /// Threads per worker process.
    pub worker_threads: usize,
    /// Lease-count override; default `2 * workers` (clamped to the
    /// architecture count) so a stolen lease costs half a worker's
    /// share, not all of it.
    pub lease_count: Option<usize>,
    /// The swarm directory: manifest, shards, heartbeats, statuses, log.
    pub dir: PathBuf,
    /// Heartbeat-staleness timeout: a running worker whose beat has not
    /// advanced for this long is killed and its lease reclaimed.
    pub heartbeat_timeout: Duration,
    /// Restarts allowed per slot before it is retired.
    pub restart_budget: u32,
    /// First-restart backoff delay (doubles per restart).
    pub backoff_base: Duration,
    /// Backoff saturation cap.
    pub backoff_cap: Duration,
    /// Deliver this `MCE_FAULT` spec to the *first* spawn of this slot
    /// (respawns always get a clean environment) — the fault-injection
    /// hook behind the CI kill-a-worker smoke test.
    pub fault_worker: Option<(usize, String)>,
    /// Path to the `mce` binary to spawn workers from.
    pub worker_exe: PathBuf,
}

impl SwarmConfig {
    /// A config with the robustness defaults: 2 leases per worker,
    /// 3-second heartbeat staleness, restart budget 3, 250 ms backoff
    /// doubling to a 5 s cap.
    pub fn new(
        workload: Workload,
        workload_arg: impl Into<String>,
        dir: impl Into<PathBuf>,
    ) -> Self {
        SwarmConfig {
            workload,
            workload_arg: workload_arg.into(),
            preset: Preset::Fast,
            workers: 2,
            worker_threads: 1,
            lease_count: None,
            dir: dir.into(),
            heartbeat_timeout: Duration::from_millis(3000),
            restart_budget: 3,
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_millis(5000),
            fault_worker: None,
            worker_exe: PathBuf::new(),
        }
    }
}

/// What one supervised run produced.
#[derive(Debug)]
pub struct SwarmOutcome {
    /// The merged run report — byte-identical to a serial run's up to
    /// `wall_clock` and the effort metrics `mce diff` masks.
    pub report: RunReport,
    /// The merged exploration result.
    pub conex: ConexResult,
    /// Worker restarts the supervisor performed (`swarm.restarts`).
    pub restarts: u64,
    /// Leases completed by a different slot than their previous
    /// claimant (`swarm.leases_stolen`).
    pub leases_stolen: u64,
    /// Total backoff delay imposed, in milliseconds (`swarm.backoff_ms`).
    pub backoff_ms: u64,
    /// Slots retired after exhausting their restart budget.
    pub retired_slots: usize,
    /// Leases the supervisor had to run inline because every slot had
    /// retired.
    pub inline_leases: usize,
}

/// What [`supervise`] returned control with: the full merged outcome,
/// or a drained stop after a termination signal (SIGINT/SIGTERM).
///
/// An interrupted run is not a failure: every running worker has been
/// stopped, every unfinished lease is back in `Pending` with its
/// on-disk checkpoint intact, and the manifest is saved. Rerunning the
/// same command rebuilds the identical partition (selection is
/// deterministic) and resumes each lease through its checkpoint, so no
/// committed architecture is recomputed.
#[derive(Debug)]
pub enum SwarmRun {
    /// Every lease finished and the shards merged cleanly.
    Completed(Box<SwarmOutcome>),
    /// A termination signal arrived first; state is on disk.
    Interrupted {
        /// Leases fully done (verified shard) at the stop.
        done: usize,
        /// Total leases in the manifest.
        total: usize,
    },
}

enum SlotState {
    Idle,
    Running {
        child: Child,
        lease: usize,
        hb_seq: Option<u64>,
        hb_advanced: Instant,
    },
    Retired,
}

struct Slot {
    state: SlotState,
    restarts: u32,
    backoff_until: Option<Instant>,
}

struct SwarmLog {
    file: std::fs::File,
    started: Instant,
}

impl SwarmLog {
    fn open(path: &Path) -> Result<Self, MceError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| MceError::io(format!("open swarm log {}", path.display()), e))?;
        Ok(SwarmLog {
            file,
            started: Instant::now(),
        })
    }

    fn line(&mut self, msg: &str) {
        let ms = self.started.elapsed().as_millis();
        let _ = writeln!(self.file, "[{ms:>7} ms] {msg}");
        let _ = self.file.flush();
    }

    /// A handle workers can inherit as stdout/stderr, interleaving their
    /// output with supervision events.
    fn stdio(&self) -> Stdio {
        self.file
            .try_clone()
            .map_or_else(|_| Stdio::null(), Stdio::from)
    }
}

/// Runs the full supervised exploration: partition, spawn, watch,
/// restart, steal, and finally merge — returning the merged report, or
/// [`SwarmRun::Interrupted`] when a termination signal (observed via
/// [`mce_budget::interrupted`]) drains the run first.
///
/// # Errors
///
/// Fails when the swarm directory cannot be prepared, when a shard is
/// missing or corrupt at merge time, or when the merged state fails its
/// coverage checks ([`merge_arch_slices`]) — the merge never papers
/// over an incomplete partition.
pub fn supervise(cfg: &SwarmConfig) -> Result<SwarmRun, MceError> {
    let start = Instant::now();
    std::fs::create_dir_all(&cfg.dir)
        .map_err(|e| MceError::io(format!("create swarm dir {}", cfg.dir.display()), e))?;
    sweep_stale_tmps(manifest_path(&cfg.dir));
    let mut log = SwarmLog::open(&log_path(&cfg.dir))?;
    let w_digest = workload_digest(&cfg.workload).to_hex();
    let apex_cfg = ApexConfig::preset(cfg.preset);
    let conex_cfg = ConexConfig::preset(cfg.preset);
    let library = ConnectivityLibrary::amba();
    let c_digest = config_digest(&apex_cfg, &conex_cfg, &library, DEFAULT_CAPACITY);
    // The supervisor runs APEX itself: selection is deterministic, and
    // owning the selection means the lease partition, the merge order
    // and the merged report's apex.* registries are all authoritative
    // here rather than copied from a worker.
    let blocks = Arc::new(TraceBlocks::compile(
        &cfg.workload,
        apex_cfg.trace_len.max(conex_cfg.trace_len),
    ));
    let apex = ApexExplorer::new(apex_cfg.clone()).explore_with_blocks(&cfg.workload, &blocks);
    let own_apex: Vec<(String, u64)> = if obs::tracing_enabled() {
        obs::counters_snapshot()
            .into_iter()
            .map(|(n, v)| (n.to_owned(), v))
            .collect()
    } else {
        Vec::new()
    };
    let own_apex_gauges: Vec<(String, u64)> = if obs::tracing_enabled() {
        obs::gauges_snapshot()
            .into_iter()
            .map(|(n, v)| (n.to_owned(), v))
            .collect()
    } else {
        Vec::new()
    };
    let mem_archs = apex.selected();
    let total = mem_archs.len();
    let lease_count = cfg
        .lease_count
        .unwrap_or_else(|| (2 * cfg.workers).max(cfg.workers))
        .max(1);
    let mut manifest = LeaseManifest {
        schema: MANIFEST_SCHEMA,
        workload_digest: w_digest.clone(),
        config_digest: c_digest.clone(),
        workers: cfg.workers,
        total_archs: total,
        leases: partition_leases(total, lease_count),
    };
    manifest.save(&manifest_path(&cfg.dir))?;
    log.line(&format!(
        "swarm start: workload `{}`, {} architectures, {} leases, {} workers",
        cfg.workload.name(),
        total,
        manifest.leases.len(),
        cfg.workers
    ));

    let mut slots: Vec<Slot> = (0..cfg.workers.max(1))
        .map(|_| Slot {
            state: SlotState::Idle,
            restarts: 0,
            backoff_until: None,
        })
        .collect();
    let mut pending: VecDeque<usize> = manifest.leases.iter().map(|l| l.id).collect();
    let mut last_owner: Vec<Option<usize>> = vec![None; manifest.leases.len()];
    let mut fault_pending = cfg.fault_worker.clone();
    let mut done = 0usize;
    let (mut restarts, mut stolen, mut backoff_ms) = (0u64, 0u64, 0u64);
    let mut inline_leases = 0usize;
    let poll = Duration::from_millis(100);

    while done < manifest.leases.len() {
        // A termination signal drains the swarm instead of killing it:
        // workers are stopped, their leases return to `Pending` (each
        // lease checkpoint stays on disk), the manifest is saved, and
        // the caller exits 0. A rerun resumes where this stop left off.
        if mce_budget::interrupted() {
            for (k, slot) in slots.iter_mut().enumerate() {
                if let SlotState::Running { child, lease, .. } = &mut slot.state {
                    let lease_id = *lease;
                    let _ = child.kill();
                    let _ = child.wait();
                    manifest.leases[lease_id].state = LeaseState::Pending;
                    log.line(&format!(
                        "worker {k}: stopped by termination signal; \
                         lease {lease_id} requeued (checkpoint kept)"
                    ));
                    slot.state = SlotState::Idle;
                }
            }
            manifest.save(&manifest_path(&cfg.dir))?;
            publish_status(
                cfg,
                &manifest,
                "interrupted",
                done,
                restarts,
                stolen,
                backoff_ms,
                &slots,
            );
            log.line(&format!(
                "swarm interrupted: {done}/{} leases done; \
                 rerun the same command to resume",
                manifest.leases.len()
            ));
            return Ok(SwarmRun::Interrupted {
                done,
                total: manifest.leases.len(),
            });
        }
        let now = Instant::now();
        // Reap and health-check every running slot.
        for (k, slot) in slots.iter_mut().enumerate() {
            let SlotState::Running {
                child,
                lease,
                hb_seq,
                hb_advanced,
            } = &mut slot.state
            else {
                continue;
            };
            let lease_id = *lease;
            // One decisive verdict per poll: still running, healthy done
            // (exit 0 AND a verified shard on disk), or crashed.
            enum Verdict {
                Running,
                Done,
                Crashed(String),
            }
            let verdict = match child.try_wait() {
                Ok(Some(status)) if status.success() => {
                    match load_checked_shard(
                        &cfg.dir,
                        &manifest.leases[lease_id],
                        &w_digest,
                        &c_digest,
                    ) {
                        Ok(_) => Verdict::Done,
                        Err(e) => Verdict::Crashed(format!("exited 0 without a valid shard ({e})")),
                    }
                }
                Ok(Some(status)) => Verdict::Crashed(format!("exited {status}")),
                Ok(None) => {
                    match read_heartbeat(&heartbeat_path(&cfg.dir, k)) {
                        Some(hb) if Some(hb.seq) != *hb_seq => {
                            *hb_seq = Some(hb.seq);
                            *hb_advanced = now;
                        }
                        _ => {}
                    }
                    if now.duration_since(*hb_advanced) > cfg.heartbeat_timeout {
                        let _ = child.kill();
                        let _ = child.wait();
                        Verdict::Crashed(format!(
                            "heartbeat stale for {} ms — killed",
                            now.duration_since(*hb_advanced).as_millis()
                        ))
                    } else {
                        Verdict::Running
                    }
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    Verdict::Crashed(format!("wait failed: {e}"))
                }
            };
            match verdict {
                Verdict::Running => {}
                Verdict::Done => {
                    slot.state = SlotState::Idle;
                    manifest.leases[lease_id].state = LeaseState::Done;
                    let _ = manifest.save(&manifest_path(&cfg.dir));
                    done += 1;
                    log.line(&format!(
                        "worker {k}: lease {lease_id} done ({done}/{} leases)",
                        manifest.leases.len()
                    ));
                }
                Verdict::Crashed(why) => {
                    log.line(&format!("worker {k}: lease {lease_id} crashed: {why}"));
                    restarts += 1;
                    obs::counter_add("swarm.restarts", 1);
                    slot.restarts += 1;
                    manifest.leases[lease_id].state = LeaseState::Pending;
                    let _ = manifest.save(&manifest_path(&cfg.dir));
                    pending.push_back(lease_id);
                    if slot.restarts > cfg.restart_budget {
                        slot.state = SlotState::Retired;
                        log.line(&format!(
                            "worker {k}: retired after {} restarts (budget {})",
                            slot.restarts, cfg.restart_budget
                        ));
                    } else {
                        let delay = backoff_after(slot.restarts, cfg.backoff_base, cfg.backoff_cap);
                        backoff_ms += delay.as_millis() as u64;
                        obs::counter_add("swarm.backoff_ms", delay.as_millis() as u64);
                        slot.backoff_until = Some(now + delay);
                        slot.state = SlotState::Idle;
                        log.line(&format!(
                            "worker {k}: backing off {} ms before restart {}",
                            delay.as_millis(),
                            slot.restarts
                        ));
                    }
                }
            }
        }
        // Hand pending leases to idle slots past their backoff.
        for (k, slot) in slots.iter_mut().enumerate() {
            if pending.is_empty() {
                break;
            }
            if !matches!(slot.state, SlotState::Idle) {
                continue;
            }
            if slot.backoff_until.is_some_and(|until| now < until) {
                continue;
            }
            let lease_id = pending.pop_front().expect("checked non-empty");
            let (lease_start, lease_end) = {
                let lease = &manifest.leases[lease_id];
                (lease.start, lease.end)
            };
            let fault = match &fault_pending {
                Some((target, spec)) if *target == k => Some(spec.clone()),
                _ => None,
            };
            let mut cmd = Command::new(&cfg.worker_exe);
            cmd.arg("swarm-worker")
                .arg(&cfg.workload_arg)
                .args(["--preset", &cfg.preset.to_string()])
                .args(["--range", &format!("{lease_start}:{lease_end}")])
                .args(["--lease", &lease_id.to_string()])
                .args(["--slot", &k.to_string()])
                .args(["--threads", &cfg.worker_threads.to_string()])
                .args(["--dir".to_owned(), cfg.dir.display().to_string()])
                .stdin(Stdio::null())
                .stdout(log.stdio())
                .stderr(log.stdio());
            // Workers never inherit the supervisor's fault spec: the CI
            // smoke test aims MCE_FAULT at exactly one first spawn, and a
            // respawned worker must not re-trip the same fault.
            cmd.env_remove("MCE_FAULT");
            if let Some(spec) = &fault {
                cmd.env("MCE_FAULT", spec);
            }
            match cmd.spawn() {
                Ok(child) => {
                    if fault.is_some() {
                        fault_pending = None;
                    }
                    if let Some(prev) = last_owner[lease_id] {
                        if prev != k {
                            stolen += 1;
                            obs::counter_add("swarm.leases_stolen", 1);
                            log.line(&format!(
                                "worker {k}: stealing lease {lease_id} from dead worker {prev}"
                            ));
                        }
                    }
                    last_owner[lease_id] = Some(k);
                    manifest.leases[lease_id].state = LeaseState::Running;
                    manifest.leases[lease_id].attempts += 1;
                    let attempt = manifest.leases[lease_id].attempts;
                    let _ = manifest.save(&manifest_path(&cfg.dir));
                    log.line(&format!(
                        "worker {k}: claimed lease {lease_id} \
                         ({lease_start}..{lease_end}, attempt {attempt}{})",
                        if fault.is_some() { ", fault armed" } else { "" }
                    ));
                    slot.state = SlotState::Running {
                        child,
                        lease: lease_id,
                        hb_seq: None,
                        hb_advanced: now,
                    };
                }
                Err(e) => {
                    log.line(&format!("worker {k}: spawn failed: {e}"));
                    pending.push_front(lease_id);
                    restarts += 1;
                    obs::counter_add("swarm.restarts", 1);
                    slot.restarts += 1;
                    if slot.restarts > cfg.restart_budget {
                        slot.state = SlotState::Retired;
                    } else {
                        let delay = backoff_after(slot.restarts, cfg.backoff_base, cfg.backoff_cap);
                        backoff_ms += delay.as_millis() as u64;
                        obs::counter_add("swarm.backoff_ms", delay.as_millis() as u64);
                        slot.backoff_until = Some(now + delay);
                    }
                }
            }
        }
        // Graceful degradation: every slot retired with work remaining —
        // the supervisor becomes the worker of last resort. run_lease
        // resets the non-apex/swarm registries per lease, and the merge
        // below rebuilds them, so inline pollution cannot leak into the
        // final report.
        let all_retired = slots.iter().all(|s| matches!(s.state, SlotState::Retired));
        if all_retired && !pending.is_empty() {
            while let Some(lease_id) = pending.pop_front() {
                let lease = manifest.leases[lease_id].clone();
                log.line(&format!(
                    "supervisor: running lease {lease_id} inline ({}..{})",
                    lease.start, lease.end
                ));
                if last_owner[lease_id].is_some() {
                    stolen += 1;
                    obs::counter_add("swarm.leases_stolen", 1);
                }
                manifest.leases[lease_id].state = LeaseState::Running;
                manifest.leases[lease_id].attempts += 1;
                let _ = manifest.save(&manifest_path(&cfg.dir));
                run_lease(
                    &cfg.workload,
                    cfg.preset,
                    cfg.worker_threads,
                    &cfg.dir,
                    &LeaseRun {
                        lease: lease_id,
                        start: lease.start,
                        end: lease.end,
                        slot: None,
                        heartbeat_every: Duration::from_millis(200),
                    },
                )?;
                manifest.leases[lease_id].state = LeaseState::Done;
                let _ = manifest.save(&manifest_path(&cfg.dir));
                done += 1;
                inline_leases += 1;
                log.line(&format!(
                    "supervisor: lease {lease_id} done inline ({done}/{} leases)",
                    manifest.leases.len()
                ));
            }
        }
        publish_status(
            cfg, &manifest, "running", done, restarts, stolen, backoff_ms, &slots,
        );
        if done < manifest.leases.len() {
            std::thread::sleep(poll);
        }
    }
    publish_status(
        cfg, &manifest, "merging", done, restarts, stolen, backoff_ms, &slots,
    );
    log.line("all leases done; merging shards");

    // ----- Merge: shards -> serial Phase-I state -> supervisor Phase II.
    let mut slices: Vec<ArchSlice> = Vec::new();
    let mut counter_sums: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauge_maxes: BTreeMap<String, u64> = BTreeMap::new();
    for lease in &manifest.leases {
        let shard = load_checked_shard(&cfg.dir, lease, &w_digest, &c_digest)?;
        for m in shard.counters {
            *counter_sums.entry(m.name).or_insert(0) += m.value;
        }
        for m in shard.gauges {
            let slot = gauge_maxes.entry(m.name).or_insert(0);
            *slot = (*slot).max(m.value);
        }
        slices.extend(shard.archs);
    }
    let merged = merge_arch_slices(&slices, total, conex_cfg.frontier_sample_every)?;
    // The merged cache: every worker's spill, first-lease-first, keyed
    // dedupe. Phase II below answers the whole shortlist from it — each
    // lease's owner fully simulated its own shortlist points.
    let mut entries = Vec::new();
    let mut seen = HashSet::new();
    for lease in &manifest.leases {
        let spill = EvalCache::load(lease_cache_path(&cfg.dir, lease.id), DEFAULT_CAPACITY)?;
        for (key, metrics) in spill.entries_fifo() {
            if seen.insert(key) {
                entries.push((key, metrics));
            }
        }
    }
    let cache = Arc::new(EvalCache::from_entries_fifo(entries, DEFAULT_CAPACITY));
    log.line(&format!(
        "shards merged: {} slices, {} cache entries",
        slices.len(),
        cache.len()
    ));
    restore_merged_registries(
        &own_apex,
        &own_apex_gauges,
        &counter_sums,
        &gauge_maxes,
        &merged.frontier_evolution,
    );
    let engine = EvalEngine::with_blocks(&cfg.workload, blocks).with_cache(cache.clone());
    let explorer = ConexExplorer::with_library(conex_cfg.clone(), library);
    let conex =
        explorer.explore_with_engine_resumable(&engine, mem_archs, merged, &mut |_| Ok(()))?;
    log.line("final selection complete (phase II answered from the merged cache)");
    let cache_stats = cache.stats();
    let report = RunReport::collect(
        &cfg.workload,
        &apex_cfg,
        &conex_cfg,
        DEFAULT_CAPACITY,
        &cache_stats,
        &conex,
        start.elapsed().as_secs_f64(),
        false,
    );
    publish_status(
        cfg, &manifest, "complete", done, restarts, stolen, backoff_ms, &slots,
    );
    log.line(&format!(
        "merge complete: {} estimated, {} simulated, {} restarts, {} leases stolen",
        conex.estimated().len(),
        conex.simulated().len(),
        restarts,
        stolen
    ));
    Ok(SwarmRun::Completed(Box::new(SwarmOutcome {
        report,
        conex,
        restarts,
        leases_stolen: stolen,
        backoff_ms,
        retired_slots: slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Retired))
            .count(),
        inline_leases,
    })))
}

fn load_checked_shard(
    dir: &Path,
    lease: &Lease,
    w_digest: &str,
    c_digest: &str,
) -> Result<WorkerShard, MceError> {
    let shard = WorkerShard::load(&shard_path(dir, lease.id))?;
    if shard.workload_digest != w_digest || shard.config_digest != c_digest {
        return Err(MceError::checkpoint(format!(
            "shard for lease {} belongs to a different workload or configuration",
            lease.id
        )));
    }
    if shard.lease != lease.id || shard.start != lease.start || shard.end != lease.end {
        return Err(MceError::checkpoint(format!(
            "shard for lease {} covers {}..{} but the lease is {}..{}",
            lease.id, shard.start, shard.end, lease.start, lease.end
        )));
    }
    Ok(shard)
}

/// Rebuilds the supervisor's registries so the merged report reads as a
/// serial run's:
///
/// * `apex.*` — the supervisor's own post-APEX snapshot (authoritative;
///   also shields against inline lease runs re-counting APEX work);
/// * `swarm.*` — left untouched (supervision history is real);
/// * `conex.shortlist` / `conex.simulated` — zeroed; the resumable
///   Phase II call sets/advances them to exactly the serial values;
/// * `budget.*` — zeroed (wall-clock section, workers ran unbounded);
/// * every other counter — the sum over worker shards (a partition of
///   the serial work);
/// * `conex.frontier_size_max` — derived from the merged frontier
///   snapshots (worker-local fronts over a slice can exceed the global
///   front, so a max-merge would overshoot);
/// * every other gauge — the max over worker shards.
///
/// Anything in the live registry not covered above is zeroed, so inline
/// lease runs cannot leak stray totals into the report.
fn restore_merged_registries(
    own_apex: &[(String, u64)],
    own_apex_gauges: &[(String, u64)],
    counter_sums: &BTreeMap<String, u64>,
    gauge_maxes: &BTreeMap<String, u64>,
    frontier: &[mce_conex::FrontierSnapshot],
) {
    if !obs::tracing_enabled() {
        return;
    }
    let excluded = |name: &str| {
        name.starts_with("apex.")
            || name.starts_with("swarm.")
            || name.starts_with("budget.")
            || name == "conex.shortlist"
            || name == "conex.simulated"
    };
    let mut counters: BTreeMap<String, u64> = own_apex
        .iter()
        .filter(|(n, _)| n.starts_with("apex."))
        .cloned()
        .collect();
    for (name, v) in obs::counters_snapshot() {
        if name.starts_with("swarm.") {
            counters.insert(name.to_owned(), v);
        }
    }
    for (name, sum) in counter_sums {
        if !excluded(name) {
            counters.insert(name.clone(), *sum);
        }
    }
    for (name, _) in obs::counters_snapshot() {
        if !counters.contains_key(name) {
            obs::counter_restore(name, 0);
        }
    }
    for (name, v) in &counters {
        obs::counter_restore(name, *v);
    }
    let mut gauges: BTreeMap<String, u64> = own_apex_gauges
        .iter()
        .filter(|(n, _)| n.starts_with("apex."))
        .cloned()
        .collect();
    for (name, v) in obs::gauges_snapshot() {
        if name.starts_with("swarm.") {
            gauges.insert(name.to_owned(), v);
        }
    }
    for (name, max) in gauge_maxes {
        if !excluded(name) && name != "conex.frontier_size_max" {
            gauges.insert(name.clone(), *max);
        }
    }
    if let Some(fmax) = frontier.iter().map(|s| s.frontier_size as u64).max() {
        gauges.insert("conex.frontier_size_max".to_owned(), fmax);
    }
    for (name, _) in obs::gauges_snapshot() {
        if !gauges.contains_key(name) {
            obs::gauge_restore(name, 0);
        }
    }
    for (name, v) in &gauges {
        obs::gauge_restore(name, *v);
    }
}

#[allow(clippy::too_many_arguments)]
fn publish_status(
    cfg: &SwarmConfig,
    manifest: &LeaseManifest,
    status: &str,
    done: usize,
    restarts: u64,
    stolen: u64,
    backoff_ms: u64,
    slots: &[Slot],
) {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"swarm_schema\": {SWARM_STATUS_SCHEMA},\n"));
    s.push_str(&format!(
        "  \"workload\": \"{}\",\n",
        obs::escape_json(cfg.workload.name())
    ));
    s.push_str(&format!("  \"status\": \"{status}\",\n"));
    s.push_str(&format!("  \"workers\": {},\n", cfg.workers));
    s.push_str(&format!("  \"leases_done\": {done},\n"));
    s.push_str(&format!("  \"leases_total\": {},\n", manifest.leases.len()));
    s.push_str(&format!("  \"restarts\": {restarts},\n"));
    s.push_str(&format!("  \"leases_stolen\": {stolen},\n"));
    s.push_str(&format!("  \"backoff_ms\": {backoff_ms},\n"));
    s.push_str("  \"slots\": [");
    for (k, slot) in slots.iter().enumerate() {
        if k > 0 {
            s.push_str(", ");
        }
        let (state, lease) = match &slot.state {
            SlotState::Idle => ("idle", None),
            SlotState::Running { lease, .. } => ("running", Some(*lease)),
            SlotState::Retired => ("retired", None),
        };
        s.push_str(&format!(
            "{{\"slot\": {k}, \"state\": \"{state}\", \"lease\": {}, \"restarts\": {}}}",
            lease.map_or_else(|| "null".to_owned(), |l| l.to_string()),
            slot.restarts
        ));
    }
    s.push_str("]\n}\n");
    // Best-effort like worker live status: losing a snapshot must never
    // hurt the run.
    let _ = atomic_write(status_path(&cfg.dir), s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_partition_evenly_and_contiguously() {
        for (total, count) in [(7usize, 3usize), (3, 8), (12, 4), (1, 1), (5, 2)] {
            let leases = partition_leases(total, count);
            assert_eq!(leases.len(), count.clamp(1, total));
            assert_eq!(leases[0].start, 0);
            for pair in leases.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous");
                assert!(
                    pair[0].end - pair[0].start >= pair[1].end - pair[1].start,
                    "longer leases first"
                );
            }
            assert_eq!(leases.last().unwrap().end, total);
        }
        assert!(partition_leases(0, 4).is_empty());
    }

    #[test]
    fn backoff_doubles_from_base_and_saturates_at_cap() {
        let base = Duration::from_millis(250);
        let cap = Duration::from_millis(5000);
        assert_eq!(backoff_after(0, base, cap), Duration::ZERO);
        assert_eq!(backoff_after(1, base, cap), Duration::from_millis(250));
        assert_eq!(backoff_after(2, base, cap), Duration::from_millis(500));
        assert_eq!(backoff_after(3, base, cap), Duration::from_millis(1000));
        assert_eq!(backoff_after(4, base, cap), Duration::from_millis(2000));
        assert_eq!(backoff_after(5, base, cap), Duration::from_millis(4000));
        assert_eq!(backoff_after(6, base, cap), cap, "saturates");
        assert_eq!(
            backoff_after(60, base, cap),
            cap,
            "no overflow far past the cap"
        );
    }

    #[test]
    fn manifest_round_trips_and_rejects_tampering() {
        let m = LeaseManifest {
            schema: MANIFEST_SCHEMA,
            workload_digest: "w".repeat(32),
            config_digest: "c".repeat(32),
            workers: 3,
            total_archs: 5,
            leases: partition_leases(5, 3),
        };
        let text = m.to_json().unwrap();
        assert_eq!(LeaseManifest::from_json(&text).unwrap(), m);
        // One flipped byte in the body breaks the digest.
        let tampered = text.replacen("\"total_archs\": 5", "\"total_archs\": 6", 1);
        assert!(LeaseManifest::from_json(&tampered).is_err());
        // A non-partition is rejected even when correctly framed.
        let mut holey = m.clone();
        holey.leases[1].start += 1;
        let err = LeaseManifest::from_json(&holey.to_json().unwrap()).unwrap_err();
        assert!(err.to_string().contains("partition"), "{err}");
    }

    #[test]
    fn heartbeat_round_trips_and_corruption_reads_as_silence() {
        let dir = std::env::temp_dir().join(format!("mce_hb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = heartbeat_path(&dir, 0);
        let hb = Heartbeat {
            pid: std::process::id(),
            lease: 3,
            seq: 17,
        };
        assert!(write_heartbeat(&path, hb));
        assert_eq!(read_heartbeat(&path), Some(hb));
        std::fs::write(&path, "{\"swarm_heartbeat\":1,\"pid\":1").unwrap();
        assert_eq!(read_heartbeat(&path), None, "torn file is no beat");
        std::fs::remove_dir_all(&dir).ok();
    }
}
