//! # memory-conex — joint memory-module and connectivity design-space exploration
//!
//! A facade crate re-exporting the whole ConEx reproduction workspace
//! (Grun/Dutt/Nicolau, *Memory System Connectivity Exploration*, DATE 2002)
//! under one roof. Downstream users depend on this crate; the examples and
//! integration tests in this repository are written against it.
//!
//! ## Crate map
//!
//! * [`appmodel`] — synthetic application models and trace generation.
//! * [`memlib`] — memory-module IP library (caches, SRAMs, stream buffers,
//!   self-indirect DMAs, off-chip DRAM) with cost and energy models.
//! * [`connlib`] — connectivity IP library (AMBA AHB/ASB/APB-style busses,
//!   MUX-based and dedicated connections, off-chip bus), reservation tables
//!   and arbitration.
//! * [`sim`] — cycle-level memory + connectivity system simulator, plus the
//!   time-sampling estimator used for pruning.
//! * [`apex`] — APEX memory-modules exploration (the paper's input stage).
//! * [`conex`] — the ConEx connectivity exploration algorithm itself, pareto
//!   machinery, exploration strategies and constraint scenarios.
//! * [`obs`] — structured tracing, counters and progress reporting across
//!   the whole pipeline (spans, worker lanes, Chrome-trace export).
//! * [`budget`] — cooperative cancellation and budget primitives (cancel
//!   tokens, deterministic evaluation budgets, deadline + SIGINT wiring,
//!   the per-candidate watchdog).
//!
//! ## Quickstart
//!
//! ```
//! use memory_conex::prelude::*;
//!
//! // Model an application (or use a built-in benchmark model).
//! let workload = memory_conex::appmodel::benchmarks::vocoder();
//!
//! // Run the full APEX → ConEx pipeline in one session: the trace is
//! // compiled once and every candidate evaluation is memoized.
//! let result = ExplorationSession::new(workload)
//!     .preset(Preset::Fast)
//!     .run()
//!     .expect("exploration runs");
//!
//! // The pareto-optimal memory+connectivity designs:
//! for point in result.conex.pareto_cost_latency() {
//!     println!("{point}");
//! }
//! ```
//!
//! The stages remain individually drivable — see [`ApexExplorer`] and
//! [`ConexExplorer`] — and produce bit-identical results; the session
//! only removes redundant work.
//!
//! [`ApexExplorer`]: mce_apex::ApexExplorer
//! [`ConexExplorer`]: mce_conex::ConexExplorer

#![forbid(unsafe_code)]

pub mod archive;
pub mod checkpoint;
pub mod diff;
pub mod live;
pub mod report;
pub mod serve;
pub mod session;
pub mod swarm;

pub use archive::{AddOutcome, ArchiveEntry, GcStats, RunArchive, ARCHIVE_SCHEMA};
pub use checkpoint::{Checkpoint, CHECKPOINT_SCHEMA};
pub use diff::{DiffKind, DiffOutcome};
pub use live::{LiveShared, LIVE_SCHEMA};
pub use mce_apex as apex;
pub use mce_appmodel as appmodel;
pub use mce_budget as budget;
pub use mce_conex as conex;
pub use mce_connlib as connlib;
pub use mce_error::MceError;
pub use mce_memlib as memlib;
pub use mce_obs as obs;
pub use mce_sim as sim;
pub use report::{RunReport, REPORT_SCHEMA};
pub use serve::{Client, JobEvent, JobJournal, JobRecord, JobSpec, JobState, ServeConfig};
pub use session::{ExplorationSession, SessionResult};
pub use swarm::{
    Lease, LeaseManifest, LeaseState, SwarmConfig, SwarmOutcome, SwarmRun, WorkerShard,
    MANIFEST_SCHEMA, SHARD_SCHEMA,
};

/// Commonly used items for writing explorations end to end.
pub mod prelude {
    pub use crate::report::{RunReport, REPORT_SCHEMA};
    pub use crate::session::{ExplorationSession, SessionResult};
    pub use mce_apex::{ApexConfig, ApexExplorer, ApexResult};
    pub use mce_appmodel::{
        AccessKind, AccessPattern, AccessProfile, Addr, DataStructure, DsId, MemAccess, Workload,
        WorkloadBuilder,
    };
    pub use mce_budget::{Bounds, CancelToken, EvalBudget, StopReason};
    pub use mce_conex::{
        CacheStats, ConexConfig, ConexExplorer, ConexResult, DesignPoint, EvalCache, EvalEngine,
        ExplorationStrategy, Metrics, ParetoFront, Scenario,
    };
    pub use mce_connlib::{
        ConnComponent, ConnComponentKind, ConnectivityArchitecture, ConnectivityLibrary,
    };
    pub use mce_error::MceError;
    pub use mce_memlib::{MemModule, MemModuleKind, MemoryArchitecture};
    pub use mce_sim::{Preset, SimStats, SystemConfig};
}
