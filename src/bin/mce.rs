//! `mce` — command-line front end for the memory + connectivity explorer.
//!
//! ```text
//! mce benchmarks                               list built-in workload models
//! mce template                                 print a workload JSON template
//! mce classify <workload> [--trace N]          APEX pattern extraction
//! mce simulate <workload> [--cache KIB] [--trace N]
//!                                              simulate a cache-only baseline
//! mce explore  <workload> [--preset fast|paper] [--out FILE] [--threads N]
//!              [--eval-cache FILE] [--trace-out FILE] [--report-out FILE]
//!              [--checkpoint FILE] [--checkpoint-every N]
//!              [--max-evals N] [--max-archs N]
//!              [--deadline SECS] [--candidate-timeout MS]
//!              [--live-status FILE] [--live-every MS] [--metrics-out FILE]
//!              [--out-dir DIR] [--progress]
//!                                              full APEX + ConEx exploration
//! mce swarm    <workload> [-j N] [--preset fast|paper] [--dir DIR]
//!              [--leases N] [--threads N] [--heartbeat-timeout MS]
//!              [--restart-budget N] [--report-out FILE] [--progress]
//!                                              supervised multi-process
//!                                              exploration: leases, worker
//!                                              heartbeats, crash restarts
//!                                              with backoff, work stealing
//! mce serve    [--dir DIR] [--addr HOST:PORT] [--archive DIR]
//!                                              crash-tolerant exploration
//!                                              job daemon: durable queue,
//!                                              checkpointed jobs, retries
//!                                              with backoff, graceful drain
//! mce submit   <workload> [--preset fast|paper] [--deadline SECS]
//!              [--retries N] [--dir DIR] [--wait]
//!                                              submit a job to the daemon
//! mce jobs     list | show ID | cancel ID | result ID | wait ID
//!              [--dir DIR]                     inspect and manage jobs
//! mce top      <status.json | swarm-dir | serve-dir> [--interval MS] [--once]
//!                                              watch a --live-status file
//!                                              (or a whole swarm or serve
//!                                              directory) as a dashboard
//! mce report   <report.json>... [--out FILE] [--html]
//!                                              render run reports as
//!                                              markdown/HTML summaries
//! mce export-metrics <status-or-report.json> [--out FILE]
//!                                              render a live-status or
//!                                              run-report file as OpenMetrics
//! mce cache-check <spill.json> [--capacity N] [--repair]
//!                                              validate (and optionally
//!                                              repair) an eval-cache spill
//! mce bench-gate [--baseline FILE] [--current FILE] [--tolerance T]
//!              [--warn-only] [--enforce-pinned] compare BENCH_eval.json to a
//!              [--record] [--trajectory FILE]   committed baseline, optionally
//!                                              appending to the perf trajectory
//! mce runs     add|list|show|gc [--archive DIR]
//!                                              content-addressed archive of
//!                                              run reports for cross-run
//!                                              analytics
//! mce diff     <A> <B> [--html] [--out FILE] [--archive DIR]
//!                                              structural comparison of two
//!                                              runs (files or archive
//!                                              digests); exits 0 iff their
//!                                              deterministic sections match
//! mce diff     --bench [FILE]                  render the recorded bench
//!                                              trajectory
//! ```
//!
//! `<workload>` is either a built-in name (`compress`, `li`, `vocoder`,
//! `mix`) or a path to a workload JSON file (see `mce template`).
//!
//! `--eval-cache FILE` persists the candidate-evaluation cache across runs:
//! loaded before exploring (a missing file is a cold start) and saved back
//! after, so a repeated exploration answers recurring candidates from disk.
//! Results are bit-identical with and without the cache.
//!
//! `--trace-out FILE` writes a Chrome trace-event JSON of the run (open it
//! in `chrome://tracing` or <https://ui.perfetto.dev>); `--progress` prints
//! live phase/progress lines to stderr, with `MCE_LOG=debug` raising the
//! message verbosity. Tracing never changes exploration results.
//!
//! `--report-out FILE` writes the run's [`RunReport`] JSON — byte-stable
//! except for its trailing `"wall_clock"` section — which `mce report`
//! renders into a self-contained summary and CI archives as an artifact.
//! The textual exploration summary is also logged under `--out-dir`
//! (default `target/experiments/`).
//!
//! `--checkpoint FILE` makes the exploration crash-safe: progress is
//! checkpointed atomically after each Phase-I architecture (or every N
//! with `--checkpoint-every N`), and re-running the same command after a
//! kill resumes from the checkpoint, producing results bit-identical to
//! an uninterrupted run. The checkpoint is deleted on success; a corrupt
//! checkpoint or one from a different workload/configuration is a clean
//! error, never a silent cold start.
//!
//! `--max-evals N` / `--max-archs N` are deterministic *logical* budgets:
//! the run stops at the next safe point once N committed evaluations /
//! Phase-I architectures are reached, and the truncation point is
//! bit-identical for any `--threads` value, with or without
//! `--eval-cache`. `--deadline SECS` bounds the run's wall time and
//! `--candidate-timeout MS` arms a watchdog that reclaims any single
//! hung evaluation by degrading it to its Phase-I estimate (tagged in
//! the run report). Ctrl-C (SIGINT) stops the run at the next safe
//! point just like a deadline: a `--checkpoint` file is written so the
//! same command line resumes, the partial report is marked
//! `"truncated"`, and the process still exits 0 with a distinct
//! `exploration truncated (...)` status line.
//!
//! `--live-status FILE` continuously publishes a schema-versioned JSON
//! snapshot of the running exploration (phase, candidate funnel,
//! evaluation rate, cache hit rate, remaining budget, ETA, frontier
//! hypervolume, full registries and time series), rewritten atomically
//! every committed architecture and every `--live-every MS` (default
//! 500). Watch it with `mce top FILE` — a refreshing dashboard on a TTY,
//! a single plain-text snapshot otherwise or with `--once`. Publishing
//! is best-effort: a failed write never fails the run, and results are
//! bit-identical with live status on or off. `--metrics-out FILE` writes
//! the end-of-run registries as OpenMetrics text; `mce export-metrics`
//! renders the same format from any live-status or run-report file.
//!
//! All file outputs (`--out`, `--report-out`, `--trace-out`, eval-cache
//! spills, checkpoints, experiment logs, live-status snapshots) are
//! written atomically — a sibling temporary plus rename — so a crash
//! mid-write never leaves a torn file behind.
//!
//! `mce swarm -j N` runs the same exploration as `mce explore`, but
//! supervised across N worker subprocesses: the Phase-I architecture
//! space is partitioned into leases, each worker explores its lease with
//! a per-lease checkpoint and heartbeat, and the supervisor detects
//! crashed or stalled workers, restarts them with exponential backoff
//! (up to `--restart-budget`), reassigns a dead worker's lease to a
//! survivor — which resumes through the lease checkpoint — and finally
//! merges the shards into one run report byte-identical (up to
//! `wall_clock` and the effort metrics `mce diff` masks) to a serial
//! run's. If every worker slot retires, the supervisor finishes the
//! remaining leases inline; the run still completes. See the module docs
//! on `memory_conex::swarm` for the full protocol.
//!
//! `mce serve` runs the exploration *job service*: a daemon with a
//! durable write-ahead job queue (`jobs.jsonl`), per-job checkpoints,
//! deterministic retries with exponential backoff, and a graceful drain
//! on SIGTERM/SIGINT. A daemon SIGKILLed mid-job restarts with every
//! acknowledged job intact and resumes the interrupted job from its
//! checkpoint; the finished report is `mce diff`-identical to a plain
//! `mce explore` of the same spec. `mce submit` and `mce jobs` are the
//! clients. See the module docs on `memory_conex::serve` for the full
//! durability contract.
//!
//! [`RunReport`]: memory_conex::RunReport

use mce_error::{atomic_write, MceError};
use memory_conex::apex::classify;
use memory_conex::appmodel::{benchmarks, AccessPattern, DataStructure, Workload, WorkloadBuilder};
use memory_conex::conex::Scenario;
use memory_conex::live;
use memory_conex::memlib::{CacheConfig, MemoryArchitecture};
use memory_conex::obs;
use memory_conex::report;
use memory_conex::sim::{simulate, Preset, SystemConfig};
use memory_conex::swarm;
use memory_conex::ExplorationSession;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    // Fault-injection test builds arm faults from `MCE_FAULT` so
    // subprocess kill-and-resume tests can crash this binary mid-run;
    // plain builds compile no hook at all. A malformed spec is a rejected
    // argument like any other: the typed error plus the usage text, not a
    // bare string.
    #[cfg(feature = "fault-injection")]
    if let Err(reason) = mce_faultinject::arm_from_env() {
        let e = MceError::invalid_arg(
            "MCE_FAULT",
            reason,
            "MCE_FAULT=<kind>:<N>[+][,...] (e.g. abort_at_eval:7, sigkill_at_eval:40, \
             stall_heartbeat:3, panic_at_eval:40+)",
        );
        eprintln!("error: {e}");
        eprintln!();
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            // A failed bench gate is a verdict, not a usage mistake.
            if !e.to_string().starts_with("bench gate:") {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mce benchmarks
  mce template
  mce classify <workload> [--trace N]
  mce simulate <workload> [--cache KIB] [--trace N]
  mce explore  <workload> [--preset fast|paper] [--out FILE] [--threads N]
               [--eval-cache FILE] [--trace-out FILE] [--report-out FILE]
               [--checkpoint FILE] [--checkpoint-every N]
               [--max-evals N] [--max-archs N]
               [--deadline SECS] [--candidate-timeout MS]
               [--live-status FILE] [--live-every MS] [--metrics-out FILE]
               [--out-dir DIR] [--progress]
  mce swarm    <workload> [-j N] [--preset fast|paper] [--dir DIR]
               [--leases N] [--threads N] [--heartbeat-timeout MS]
               [--restart-budget N] [--fault-worker K]
               [--report-out FILE] [--trace-out FILE] [--progress]
  mce serve    [--dir DIR] [--addr HOST:PORT] [--archive DIR]
               [--backoff-base MS] [--backoff-cap MS]
  mce submit   <workload> [--preset fast|paper] [--threads N]
               [--max-evals N] [--max-archs N] [--deadline SECS]
               [--retries N] [--dir DIR] [--wait]
  mce jobs     list | show <id> | cancel <id> | result <id> [--out FILE]
               | wait <id>  [--dir DIR]
  mce top      <status.json | swarm-dir | serve-dir> [--interval MS] [--once]
  mce report   <report.json>... [--out FILE] [--html]
  mce export-metrics <status-or-report.json> [--out FILE]
  mce cache-check <spill.json> [--capacity N] [--repair]
  mce bench-gate [--baseline FILE] [--current FILE] [--tolerance T] [--warn-only]
               [--enforce-pinned] [--record] [--trajectory FILE]
  mce runs     add <report.json> | list | show <digest> | gc [--keep N]
               [--archive DIR]
  mce diff     <A> <B> [--html] [--out FILE] [--archive DIR]
  mce diff     --bench [FILE]

<workload> = compress | li | vocoder | adpcm | jpeg | mix | path/to/workload.json

explore options:
  --preset P       exploration scale: fast or paper (--scale is an alias)
  --threads N      worker threads for estimation and simulation, N >= 1
                   (default: one per core; results are identical for any N)
  --eval-cache FILE persist the candidate-evaluation cache across runs
                   (loaded if present, saved after; results unchanged)
  --trace-out FILE write a Chrome trace-event JSON of the run
                   (open in chrome://tracing or https://ui.perfetto.dev)
  --report-out FILE write the run-report JSON (schema v1; byte-stable
                   except for its wall_clock section)
  --checkpoint FILE crash-safe mode: checkpoint progress to FILE and
                   resume from it if it exists; results are bit-identical
                   to an uninterrupted run; deleted on success
  --checkpoint-every N checkpoint every N Phase-I architectures
                   (default 1; the last architecture always checkpoints)
  --max-evals N    stop after N committed candidate evaluations (N >= 1);
                   deterministic: the same N truncates at the same point
                   for any --threads value, cache or no cache
  --max-archs N    stop after N Phase-I memory architectures (N >= 1);
                   deterministic like --max-evals
  --deadline SECS  stop at the next safe point after SECS seconds of wall
                   time (fractions allowed); the partial report is marked
                   truncated and the exit code stays 0
  --candidate-timeout MS reclaim any single evaluation running longer
                   than MS milliseconds by degrading it to its estimate
                   (tagged in the report's wall_clock.degraded section)
  --live-status FILE continuously publish a live-status JSON snapshot
                   to FILE (atomic rewrites; watch it with `mce top`);
                   best-effort, never changes results or fails the run
  --live-every MS  live-status / time-series sampling cadence in
                   milliseconds (default 500, MS >= 10; requires
                   --live-status)
  --metrics-out FILE write the end-of-run counters/gauges/histograms
                   as OpenMetrics text to FILE
  --explain        capture frontier provenance: why each Phase-I point
                   survived or was pruned, and where its metrics came
                   from; adds the report's `provenance` section and
                   changes nothing else
  --progress       print live progress lines to stderr (MCE_LOG=debug
                   for more detail)

swarm options:
  -j, --workers N  worker subprocesses to supervise (default 2, N >= 1)
  --preset P       exploration scale: fast or paper (--scale is an alias)
  --dir DIR        swarm directory for the lease manifest, shards,
                   heartbeats, per-worker live status and swarm.log
                   (default target/swarm; watch it with `mce top DIR`)
  --leases N       lease count (default 2 per worker, clamped to the
                   architecture count); more leases = finer stealing
  --threads N      threads per worker process (default 1)
  --heartbeat-timeout MS kill a worker whose heartbeat has not advanced
                   for MS milliseconds and reassign its lease
                   (default 3000, MS >= 100)
  --restart-budget N restarts allowed per worker slot before it is
                   retired (default 3; 0 = never restart); when every
                   slot retires the supervisor finishes the remaining
                   leases inline
  --fault-worker K deliver the MCE_FAULT spec to worker slot K's first
                   spawn only (fault-injection builds; default 0)
  --report-out FILE write the merged run-report JSON — byte-identical
                   (up to wall_clock and effort metrics) to a serial
                   `mce explore` report of the same workload and preset

serve options (the job daemon; clients are `mce submit` / `mce jobs`):
  --dir DIR        serve directory: job journal (jobs.jsonl), pidfile,
                   bound-address file, per-job checkpoints/reports and
                   serve.log (default target/serve; watch with `mce top DIR`)
  --addr HOST:PORT listen address (default 127.0.0.1:0 — an ephemeral
                   port, published to DIR/serve.addr once bound)
  --archive DIR    run archive completed job reports are added to
                   (default target/mce-runs)
  --backoff-base MS first-retry delay, doubling per charged attempt
                   (default 250; the swarm's schedule)
  --backoff-cap MS backoff saturation cap (default 5000)
  SIGTERM/SIGINT drain the daemon: admissions stop, the running job
  checkpoints at its next safe point and requeues uncharged, and the
  process exits 0; restarting the daemon resumes everything. A daemon
  killed outright (SIGKILL) replays its journal on restart — no
  acknowledged job is ever lost.

submit options (plus --preset/--threads/--max-evals/--max-archs as in explore):
  --deadline SECS  per-attempt wall-clock deadline (fractions allowed);
                   a deadlined attempt retries from its checkpoint
                   until --retries is spent, then parks as timed-out
  --retries N      retry budget for failures and deadline timeouts
                   (default 2; crash recoveries and drains are free)
  --dir DIR        the daemon's serve directory (default target/serve)
  --wait           block until the job is terminal; exit 0 iff it is done

jobs subcommands (ids are printed by submit; --dir as in submit):
  list             one summary JSON line per job
  show <id>        one job's summary JSON
  cancel <id>      cancel a queued job now, or ask a running one to
                   stop at its next safe point
  result <id>      print the finished job's run report (--out FILE to
                   write it instead)
  wait <id>        poll until the job is terminal; exit 0 iff done

top options:
  --interval MS    dashboard refresh interval (default 500, MS >= 50)
  --once           print one plain-text snapshot and exit (also the
                   default when stdout is not a terminal)
                   (a swarm directory renders the supervisor summary
                   plus one line per worker)

report options:
  --out FILE       write the summary to FILE instead of stdout
  --html           render a self-contained HTML document instead of markdown

export-metrics options:
  --out FILE       write the OpenMetrics text to FILE instead of stdout

cache-check options:
  --capacity N     resident-entry capacity used when loading (default 65536)
  --repair         rewrite the spill with corrupt entries dropped
                   (atomic; without it a corrupt spill only reports);
                   exits 0 when the spill was already clean, 2 when
                   corrupt entries were dropped, 1 on unrepairable damage

bench-gate options:
  --baseline FILE  committed baseline (default crates/bench/BENCH_eval.baseline.json)
  --current FILE   fresh measurement (default BENCH_eval.json)
  --tolerance T    allowed relative regression, e.g. 0.2 = 20% (default 0.2)
  --warn-only      report regressions without failing
  --enforce-pinned fail only on the pinned contract fields
                   (block_replay_speedup, block_replay_cancellable_overhead);
                   other regressions warn
  --record         append the current summary to the bench trajectory
                   (one JSON line per run; render with `mce diff --bench`)
  --trajectory FILE trajectory file for --record / --bench
                   (default BENCH_trajectory.jsonl)

runs subcommands (content-addressed run archive, default DIR target/mce-runs):
  add <report.json> archive a run report under the digest of its
                   deterministic prefix; a re-run of the same
                   configuration is reported as a duplicate
  list             one line per archived run: digest, workload, preset,
                   status, funnel totals, frontier hypervolume
  show <digest>    print an archived report (digest prefixes resolve)
  gc [--keep N]    drop all but the newest N entries and delete
                   orphaned objects

diff options:
  <A> <B>          run-report files, live-status files, or archived run
                   digests (paths are tried first, then the archive);
                   exits 0 iff the deterministic sections are identical,
                   1 when they differ
  --html           render a self-contained HTML document instead of markdown
  --out FILE       write the rendered diff to FILE instead of stdout
  --archive DIR    archive to resolve digests against (default target/mce-runs)
  --bench [FILE]   render the recorded bench trajectory instead of
                   comparing two runs";

type CliError = Box<dyn std::error::Error>;

/// Runs one command; `Ok` carries the process exit code (0 for every
/// command except `cache-check` and `swarm`, which exit 2 to tell
/// "clean" from "repaired"/"completed degraded", and `serve`/`jobs`,
/// whose codes mirror the service contract).
fn run(args: &[String]) -> Result<u8, CliError> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "benchmarks" => cmd_benchmarks().map(|()| 0),
        "template" => cmd_template().map(|()| 0),
        "classify" => cmd_classify(&args[1..]).map(|()| 0),
        "simulate" => cmd_simulate(&args[1..]).map(|()| 0),
        "explore" => cmd_explore(&args[1..]).map(|()| 0),
        "swarm" => cmd_swarm(&args[1..]),
        // Internal: what `mce swarm` spawns per lease. Hidden from USAGE
        // on purpose — its flags are an implementation detail.
        "swarm-worker" => cmd_swarm_worker(&args[1..]).map(|()| 0),
        "serve" => cmd_serve(&args[1..]).map(|()| 0),
        "submit" => cmd_submit(&args[1..]),
        "jobs" => cmd_jobs(&args[1..]),
        "top" => cmd_top(&args[1..]).map(|()| 0),
        "report" => cmd_report(&args[1..]).map(|()| 0),
        "export-metrics" => cmd_export_metrics(&args[1..]).map(|()| 0),
        "cache-check" => cmd_cache_check(&args[1..]),
        "bench-gate" => cmd_bench_gate(&args[1..]).map(|()| 0),
        "runs" => cmd_runs(&args[1..]).map(|()| 0),
        "diff" => cmd_diff(&args[1..]),
        other => Err(format!("unknown command `{other}`").into()),
    }
}

/// Parses `--flag value` pairs after the positional workload argument.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses an optional integer `--flag value`, rejecting non-numeric,
/// negative, overflowing and below-minimum values with a typed
/// [`MceError::InvalidArg`] carrying a one-line usage hint — never a
/// panic or a silent clamp.
fn numeric_flag<T>(
    args: &[String],
    flag: &'static str,
    min: T,
    hint: &'static str,
) -> Result<Option<T>, MceError>
where
    T: std::str::FromStr + PartialOrd + std::fmt::Display,
    T::Err: std::fmt::Display,
{
    let Some(raw) = flag_value(args, flag) else {
        return Ok(None);
    };
    let v: T = raw
        .parse()
        .map_err(|e| MceError::invalid_arg(flag, format!("`{raw}` is not a number: {e}"), hint))?;
    if v < min {
        return Err(MceError::invalid_arg(
            flag,
            format!("must be at least {min}, got {v}"),
            hint,
        ));
    }
    Ok(Some(v))
}

fn load_workload(args: &[String]) -> Result<Workload, CliError> {
    let name = args.first().ok_or("missing <workload> argument")?;
    match name.as_str() {
        "compress" => Ok(benchmarks::compress()),
        "li" => Ok(benchmarks::li()),
        "vocoder" => Ok(benchmarks::vocoder()),
        "adpcm" => Ok(benchmarks::adpcm()),
        "jpeg" => Ok(benchmarks::jpeg()),
        "mix" => Ok(benchmarks::synthetic_mix(1)),
        path => {
            let body = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read workload file `{path}`: {e}"))?;
            let w: Workload = serde_json::from_str(&body)
                .map_err(|e| format!("invalid workload JSON in `{path}`: {e}"))?;
            Ok(w)
        }
    }
}

fn cmd_benchmarks() -> Result<(), CliError> {
    for w in benchmarks::all().into_iter().chain(benchmarks::extended()) {
        println!("{w}");
    }
    println!("{}", benchmarks::synthetic_mix(1));
    Ok(())
}

fn cmd_template() -> Result<(), CliError> {
    // A small but representative workload the user can edit.
    let template = WorkloadBuilder::new("my_app")
        .data_structure(
            DataStructure::new("input", 64 * 1024, 2, AccessPattern::Stream { stride: 2 })
                .with_hotness(5.0)
                .with_write_fraction(0.0),
        )
        .data_structure(
            DataStructure::new("table", 128 * 1024, 8, AccessPattern::SelfIndirect)
                .with_hotness(3.0),
        )
        .data_structure(
            DataStructure::new(
                "state",
                2 * 1024,
                4,
                AccessPattern::LoopNest {
                    working_set: 512,
                    reuse: 8,
                },
            )
            .with_hotness(4.0)
            .with_write_fraction(0.3),
        )
        .seed(1)
        .build();
    println!("{}", serde_json::to_string_pretty(&template)?);
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), CliError> {
    let w = load_workload(args)?;
    let trace = numeric_flag::<usize>(args, "--trace", 1, "--trace N (accesses, N >= 1)")?
        .unwrap_or(30_000);
    println!(
        "pattern extraction for `{}` over {trace} accesses:\n",
        w.name()
    );
    for r in classify(&w, trace) {
        let ds = w.data_structure(r.ds);
        println!(
            "  {:<16} {:<14} share {:>5.1}%  stride-reg {:>4.2}  reuse {:>4.2}",
            ds.name(),
            r.class.to_string(),
            r.access_share * 100.0,
            r.stride_regularity,
            r.reuse_factor
        );
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let w = load_workload(args)?;
    let kib =
        numeric_flag::<u64>(args, "--cache", 1, "--cache KIB (cache size, KIB >= 1)")?.unwrap_or(8);
    let trace = numeric_flag::<usize>(args, "--trace", 1, "--trace N (accesses, N >= 1)")?
        .unwrap_or(30_000);
    let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(kib));
    let sys = SystemConfig::with_shared_bus(&w, mem)?;
    let stats = simulate(&sys, &w, trace);
    println!("system: {sys}");
    println!("cost:   {} gates", sys.gate_cost());
    println!("result: {stats}");
    for (i, link) in stats.links.iter().enumerate() {
        println!(
            "  link {:<6} {:>8} transfers  {:>10} B  utilization {:>5.1}%",
            link.name,
            link.transfers,
            link.bytes,
            stats.link_utilization(i) * 100.0
        );
    }
    for m in &stats.modules {
        println!(
            "  module {:<6} {:>8} accesses  hit ratio {:>5.1}%",
            m.name,
            m.accesses,
            m.hit_ratio() * 100.0
        );
    }
    Ok(())
}

/// The CLI's observability wiring: builds the sink stack requested by
/// `--trace-out` / `--progress`, installs it for the duration of the
/// exploration, and writes the trace file on `finish`.
///
/// `need_metrics` (set by `--report-out`) guarantees the recorder is
/// active even when no sink was requested: a [`obs::NullSink`] discards
/// the event stream while the counter, gauge and histogram registries
/// keep collecting for the run report.
struct ObsSession {
    chrome: Option<(Arc<obs::ChromeTraceSink>, String)>,
    installed: bool,
}

impl ObsSession {
    fn start(trace_out: Option<&str>, progress: bool, need_metrics: bool) -> Self {
        let chrome = trace_out.map(|path| (Arc::new(obs::ChromeTraceSink::new()), path.to_owned()));
        let mut sinks: Vec<Arc<dyn obs::Sink>> = Vec::new();
        if let Some((sink, _)) = &chrome {
            sinks.push(sink.clone());
        }
        if progress {
            sinks.push(Arc::new(obs::ProgressReporter::new(Duration::from_millis(
                200,
            ))));
        }
        if sinks.is_empty() && need_metrics {
            sinks.push(Arc::new(obs::NullSink::new()));
        }
        let installed = !sinks.is_empty();
        if installed {
            obs::init_level_from_env();
            let sink: Arc<dyn obs::Sink> = if sinks.len() == 1 {
                sinks.pop().expect("one sink")
            } else {
                Arc::new(obs::MultiSink::new(sinks))
            };
            obs::install(sink);
        }
        ObsSession { chrome, installed }
    }

    fn finish(self) -> Result<(), CliError> {
        if self.installed {
            obs::uninstall();
        }
        if let Some((sink, path)) = self.chrome {
            sink.write_to_file(std::path::Path::new(&path))
                .map_err(|e| format!("cannot write trace file `{path}`: {e}"))?;
            eprintln!("wrote trace {path}");
        }
        Ok(())
    }
}

fn cmd_explore(args: &[String]) -> Result<(), CliError> {
    use std::fmt::Write as _;

    let w = load_workload(args)?;
    let scale: Preset = flag_value(args, "--preset")
        .or_else(|| flag_value(args, "--scale"))
        .unwrap_or("fast")
        .parse()?;
    let mut session = ExplorationSession::new(w.clone()).preset(scale);
    if let Some(t) = numeric_flag::<usize>(args, "--threads", 1, "--threads N (N >= 1)")? {
        session = session.threads(t);
    }
    let cache_file = flag_value(args, "--eval-cache");
    if let Some(path) = cache_file {
        session = session.eval_cache_file(path);
    }
    // Unlike the output flags, a silently dropped `--checkpoint` would
    // cost the user the crash safety they asked for, so a missing or
    // flag-shaped value is an error rather than ignored.
    let checkpoint_file = match args.iter().position(|a| a == "--checkpoint") {
        Some(i) => Some(
            args.get(i + 1)
                .map(String::as_str)
                .filter(|v| !v.starts_with("--"))
                .ok_or("--checkpoint needs a FILE argument")?,
        ),
        None => None,
    };
    if let Some(path) = checkpoint_file {
        session = session.checkpoint_file(path);
        let resuming = std::path::Path::new(path).exists();
        if resuming {
            eprintln!("resuming from checkpoint {path}");
        }
    }
    if let Some(n) = numeric_flag::<usize>(
        args,
        "--checkpoint-every",
        1,
        "--checkpoint-every N (N >= 1, requires --checkpoint FILE)",
    )? {
        if checkpoint_file.is_none() {
            return Err("--checkpoint-every needs --checkpoint FILE".into());
        }
        session = session.checkpoint_every(n);
    }
    if let Some(n) = numeric_flag::<u64>(args, "--max-evals", 1, "--max-evals N (N >= 1)")? {
        session = session.max_evals(n);
    }
    if let Some(n) = numeric_flag::<usize>(args, "--max-archs", 1, "--max-archs N (N >= 1)")? {
        session = session.max_archs(n);
    }
    if let Some(raw) = flag_value(args, "--deadline") {
        let hint = "--deadline SECS (positive seconds, fractions allowed)";
        let secs: f64 = raw.parse().map_err(|e| {
            MceError::invalid_arg("--deadline", format!("`{raw}` is not a number: {e}"), hint)
        })?;
        if !secs.is_finite() || secs <= 0.0 {
            return Err(MceError::invalid_arg(
                "--deadline",
                format!("must be a positive number of seconds, got `{raw}`"),
                hint,
            )
            .into());
        }
        session = session.deadline(Duration::from_secs_f64(secs));
    }
    if let Some(ms) = numeric_flag::<u64>(
        args,
        "--candidate-timeout",
        1,
        "--candidate-timeout MS (milliseconds, MS >= 1)",
    )? {
        session = session.candidate_timeout(Duration::from_millis(ms));
    }
    // Like --checkpoint: a silently dropped --live-status would cost the
    // user the monitoring they asked for, so a missing or flag-shaped
    // value is an error rather than ignored.
    let live_status = match args.iter().position(|a| a == "--live-status") {
        Some(i) => Some(
            args.get(i + 1)
                .map(String::as_str)
                .filter(|v| !v.starts_with("--"))
                .ok_or("--live-status needs a FILE argument")?,
        ),
        None => None,
    };
    if let Some(path) = live_status {
        session = session.live_status_file(path);
    }
    if let Some(ms) = numeric_flag::<u64>(
        args,
        "--live-every",
        10,
        "--live-every MS (MS >= 10, requires --live-status FILE)",
    )? {
        if live_status.is_none() {
            return Err("--live-every needs --live-status FILE".into());
        }
        session = session.live_every(Duration::from_millis(ms));
    }
    let metrics_out = flag_value(args, "--metrics-out");
    if let Some(path) = metrics_out {
        session = session.metrics_out(path);
    }
    if args.iter().any(|a| a == "--explain") {
        session = session.explain(true);
    }
    // Ctrl-C and a process manager's SIGTERM both become a cooperative
    // stop at the next safe point instead of killing the process: the
    // checkpoint and a truncated report are still written, and the exit
    // code stays 0.
    memory_conex::budget::install_termination_handlers();
    session = session.watch_interrupt(true);
    let report_out = flag_value(args, "--report-out");
    let obs_session = ObsSession::start(
        flag_value(args, "--trace-out"),
        args.iter().any(|a| a == "--progress"),
        report_out.is_some() || live_status.is_some() || metrics_out.is_some(),
    );
    eprintln!("exploring `{}` at {scale} scale...", w.name());
    let result = session.run()?;
    obs_session.finish()?;
    let conex = &result.conex;
    if let Some(reason) = conex.stop_reason() {
        // The distinct truncation status line: the run stopped at a safe
        // point, everything below covers the committed part, exit code 0.
        match checkpoint_file {
            Some(path) => eprintln!(
                "exploration truncated ({reason}): checkpoint saved to {path} — \
                 re-run the same command to resume"
            ),
            None => eprintln!(
                "exploration truncated ({reason}): partial results below \
                 (add --checkpoint FILE to make truncated runs resumable)"
            ),
        }
    }
    if !conex.degraded().is_empty() {
        eprintln!(
            "{} evaluation(s) hit --candidate-timeout and were degraded to estimates",
            conex.degraded().len()
        );
    }
    if let Some(path) = cache_file {
        let s = result.cache_stats;
        eprintln!(
            "eval-cache {path}: {} hits, {} misses, {} inserts",
            s.hits, s.misses, s.inserts
        );
    }
    if let Some(path) = live_status {
        eprintln!(
            "live status {path} holds the final snapshot (watch live runs with `mce top {path}`)"
        );
    }
    if let Some(path) = metrics_out {
        eprintln!("wrote metrics {path}");
    }
    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "estimated {} candidates, fully simulated {} ({:.1}s)\n",
        conex.estimated().len(),
        conex.simulated().len(),
        conex.elapsed().as_secs_f64()
    );
    let _ = writeln!(summary, "cost/performance pareto:");
    for p in conex.pareto_cost_latency() {
        let _ = writeln!(
            summary,
            "  {:>8} gates  {:>7.2} cyc  {:>6.2} nJ  {}",
            p.metrics.cost_gates,
            p.metrics.latency_cycles,
            p.metrics.energy_nj,
            p.describe()
        );
    }
    // A quick power-constrained view at the median energy.
    let mut energies: Vec<f64> = conex
        .simulated()
        .iter()
        .map(|p| p.metrics.energy_nj)
        .collect();
    energies.sort_by(f64::total_cmp);
    if let Some(&median) = energies.get(energies.len() / 2) {
        let picks = Scenario::PowerConstrained {
            max_energy_nj: median,
        }
        .select(conex.simulated());
        let _ = writeln!(
            summary,
            "\npower-constrained (≤ median {median:.2} nJ): {} admissible pareto designs",
            picks.len()
        );
    }
    print!("{summary}");
    write_experiment_log(
        flag_value(args, "--out-dir").unwrap_or("target/experiments"),
        &w,
        scale,
        &summary,
    );
    if let Some(path) = report_out {
        atomic_write(path, result.report.to_json().as_bytes())
            .map_err(|e| format!("cannot write report file `{path}`: {e}"))?;
        eprintln!("wrote report {path}");
    }
    if let Some(path) = flag_value(args, "--out") {
        atomic_write(path, serde_json::to_string_pretty(&conex)?.as_bytes())?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Logs the textual exploration summary under the experiments directory
/// (one file per workload/preset, overwritten on re-runs). Logging is
/// best-effort: an unwritable directory warns but never fails the run.
fn write_experiment_log(out_dir: &str, w: &Workload, scale: Preset, summary: &str) {
    let dir = std::path::Path::new(out_dir);
    let path = dir.join(format!("explore_{}_{scale}.txt", w.name()));
    let written = std::fs::create_dir_all(dir)
        .map_err(|e| e.to_string())
        .and_then(|()| atomic_write(&path, summary.as_bytes()).map_err(|e| e.to_string()));
    match written {
        Ok(()) => eprintln!("logged {}", path.display()),
        Err(e) => eprintln!(
            "warning: cannot write experiment log {}: {e}",
            path.display()
        ),
    }
}

/// `mce swarm`: supervised multi-process exploration. Partitions the
/// Phase-I space into leases, spawns `-j` worker subprocesses (each a
/// hidden `mce swarm-worker` invocation), supervises them — heartbeat
/// staleness, crash restarts with exponential backoff, lease stealing,
/// inline fallback — and merges their shards into one run report.
///
/// Exit-code contract: 0 = completed with every lease run by a worker
/// (or drained cleanly by SIGINT/SIGTERM with resumable state on
/// disk); 2 = completed, but only by falling back to inline execution
/// after every worker slot retired (the report is still exact — the
/// degradation is operational); 1 = failed.
fn cmd_swarm(args: &[String]) -> Result<u8, CliError> {
    let w = load_workload(args)?;
    let workload_arg = args.first().expect("load_workload checked").clone();
    let scale: Preset = flag_value(args, "--preset")
        .or_else(|| flag_value(args, "--scale"))
        .unwrap_or("fast")
        .parse()?;
    let dir = flag_value(args, "--dir").unwrap_or("target/swarm");
    let mut cfg = swarm::SwarmConfig::new(w.clone(), workload_arg, dir);
    cfg.preset = scale;
    cfg.worker_exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate the mce binary to spawn workers: {e}"))?;
    let workers_hint = "-j N / --workers N (worker subprocesses, N >= 1)";
    if let Some(n) = numeric_flag::<usize>(args, "-j", 1, workers_hint)?.or(numeric_flag::<usize>(
        args,
        "--workers",
        1,
        workers_hint,
    )?) {
        cfg.workers = n;
    }
    if let Some(n) = numeric_flag::<usize>(args, "--threads", 1, "--threads N (N >= 1)")? {
        cfg.worker_threads = n;
    }
    if let Some(n) = numeric_flag::<usize>(args, "--leases", 1, "--leases N (N >= 1)")? {
        cfg.lease_count = Some(n);
    }
    if let Some(ms) = numeric_flag::<u64>(
        args,
        "--heartbeat-timeout",
        100,
        "--heartbeat-timeout MS (milliseconds, MS >= 100)",
    )? {
        cfg.heartbeat_timeout = Duration::from_millis(ms);
    }
    if let Some(n) = numeric_flag::<u32>(
        args,
        "--restart-budget",
        0,
        "--restart-budget N (restarts per worker slot, N >= 0)",
    )? {
        cfg.restart_budget = n;
    }
    // Fault delivery is the supervisor's to orchestrate: the spec from
    // the environment goes to exactly one worker's first spawn (slot
    // `--fault-worker`, default 0), and the supervisor itself disarms —
    // its own merge-phase evaluations must not trip an eval fault meant
    // for a worker.
    let fault_slot = numeric_flag::<usize>(
        args,
        "--fault-worker",
        0,
        "--fault-worker K (worker slot index, K >= 0)",
    )?
    .unwrap_or(0);
    if let Ok(spec) = std::env::var("MCE_FAULT") {
        if fault_slot >= cfg.workers {
            return Err(MceError::invalid_arg(
                "--fault-worker",
                format!(
                    "slot {fault_slot} does not exist with {} workers",
                    cfg.workers
                ),
                "--fault-worker K (worker slot index, K < -j N)",
            )
            .into());
        }
        cfg.fault_worker = Some((fault_slot, spec));
    }
    #[cfg(feature = "fault-injection")]
    mce_faultinject::disarm();
    let report_out = flag_value(args, "--report-out");
    let obs_session = ObsSession::start(
        flag_value(args, "--trace-out"),
        args.iter().any(|a| a == "--progress"),
        true,
    );
    eprintln!(
        "swarming `{}` at {scale} scale: {} workers under {} (watch with `mce top {}`)",
        w.name(),
        cfg.workers,
        cfg.dir.display(),
        cfg.dir.display()
    );
    // SIGINT/SIGTERM drain the swarm instead of killing it: the
    // supervisor observes the flag at its next poll, stops the workers,
    // requeues their leases (checkpoints kept) and exits 0.
    memory_conex::budget::install_termination_handlers();
    let outcome = match swarm::supervise(&cfg)? {
        swarm::SwarmRun::Completed(outcome) => outcome,
        swarm::SwarmRun::Interrupted { done, total } => {
            obs_session.finish()?;
            eprintln!(
                "swarm interrupted ({done}/{total} leases done): state saved under {}; \
                 rerun the same command to resume",
                cfg.dir.display()
            );
            return Ok(0);
        }
    };
    obs_session.finish()?;
    let conex = &outcome.conex;
    eprintln!(
        "swarm: {} restart(s), {} lease(s) stolen, {} ms backoff, \
         {} slot(s) retired, {} lease(s) run inline",
        outcome.restarts,
        outcome.leases_stolen,
        outcome.backoff_ms,
        outcome.retired_slots,
        outcome.inline_leases
    );
    println!(
        "estimated {} candidates, fully simulated {} ({:.1}s)\n",
        conex.estimated().len(),
        conex.simulated().len(),
        conex.elapsed().as_secs_f64()
    );
    println!("cost/performance pareto:");
    for p in conex.pareto_cost_latency() {
        println!(
            "  {:>8} gates  {:>7.2} cyc  {:>6.2} nJ  {}",
            p.metrics.cost_gates,
            p.metrics.latency_cycles,
            p.metrics.energy_nj,
            p.describe()
        );
    }
    if let Some(path) = report_out {
        atomic_write(path, outcome.report.to_json().as_bytes())
            .map_err(|e| format!("cannot write report file `{path}`: {e}"))?;
        eprintln!("wrote report {path}");
    }
    if outcome.inline_leases > 0 {
        eprintln!(
            "swarm completed degraded: {} lease(s) fell back to inline execution",
            outcome.inline_leases
        );
        return Ok(2);
    }
    Ok(0)
}

/// `mce swarm-worker` (internal): one lease of a swarm run. Spawned by
/// `cmd_swarm`; explores `--range LO:HI` with a per-lease checkpoint,
/// cache spill, heartbeat and live status, and writes the lease shard
/// the supervisor merges. Exit 0 plus a digest-valid shard is the only
/// thing the supervisor trusts.
fn cmd_swarm_worker(args: &[String]) -> Result<(), CliError> {
    let w = load_workload(args)?;
    let scale: Preset = flag_value(args, "--preset").unwrap_or("fast").parse()?;
    let range = flag_value(args, "--range").ok_or("swarm-worker needs --range LO:HI")?;
    let (lo, hi) = range
        .split_once(':')
        .ok_or_else(|| format!("--range `{range}` is not LO:HI"))?;
    let start: usize = lo
        .parse()
        .map_err(|e| format!("--range start `{lo}` is not a number: {e}"))?;
    let end: usize = hi
        .parse()
        .map_err(|e| format!("--range end `{hi}` is not a number: {e}"))?;
    let lease = numeric_flag::<usize>(args, "--lease", 0, "--lease N (lease id, N >= 0)")?
        .ok_or("swarm-worker needs --lease N")?;
    let slot = numeric_flag::<usize>(args, "--slot", 0, "--slot K (worker slot, K >= 0)")?
        .ok_or("swarm-worker needs --slot K")?;
    let threads = numeric_flag::<usize>(args, "--threads", 1, "--threads N (N >= 1)")?.unwrap_or(1);
    let heartbeat_ms = numeric_flag::<u64>(
        args,
        "--heartbeat-every",
        10,
        "--heartbeat-every MS (MS >= 10)",
    )?
    .unwrap_or(200);
    let dir = flag_value(args, "--dir").ok_or("swarm-worker needs --dir DIR")?;
    // Registries must collect even without any sink: the shard carries
    // this lease's counters and gauges back to the supervisor.
    let obs_session = ObsSession::start(None, false, true);
    let outcome = swarm::run_lease(
        &w,
        scale,
        threads,
        std::path::Path::new(dir),
        &swarm::LeaseRun {
            lease,
            start,
            end,
            slot: Some(slot),
            heartbeat_every: Duration::from_millis(heartbeat_ms),
        },
    );
    obs_session.finish()?;
    outcome?;
    Ok(())
}

/// `mce serve`: runs the crash-tolerant exploration job daemon until a
/// termination signal drains it. See `memory_conex::serve` for the
/// durability contract the daemon implements.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let dir = flag_value(args, "--dir").unwrap_or("target/serve");
    let mut cfg = memory_conex::serve::ServeConfig::new(dir);
    if let Some(addr) = flag_value(args, "--addr") {
        cfg.addr = addr.to_owned();
    }
    if let Some(archive) = flag_value(args, "--archive") {
        cfg.archive = archive.into();
    }
    if let Some(ms) = numeric_flag::<u64>(
        args,
        "--backoff-base",
        1,
        "--backoff-base MS (milliseconds, MS >= 1)",
    )? {
        cfg.backoff_base = Duration::from_millis(ms);
    }
    if let Some(ms) = numeric_flag::<u64>(
        args,
        "--backoff-cap",
        1,
        "--backoff-cap MS (milliseconds, MS >= 1)",
    )? {
        cfg.backoff_cap = Duration::from_millis(ms);
    }
    memory_conex::serve::run_daemon(cfg)?;
    Ok(())
}

/// The serve directory named by `--dir` (default `target/serve`).
fn serve_dir(args: &[String]) -> &std::path::Path {
    std::path::Path::new(flag_value(args, "--dir").unwrap_or("target/serve"))
}

/// A client bound to the daemon currently publishing `<dir>/serve.addr`.
fn serve_client(dir: &std::path::Path) -> Result<memory_conex::serve::Client, CliError> {
    Ok(memory_conex::serve::Client::new(
        memory_conex::serve::client::read_addr(dir)?,
    ))
}

/// `mce submit`: builds a [`JobSpec`] from explore-style flags — the
/// workload is resolved and inlined client-side, so the daemon never
/// reads client paths — and submits it. Prints the assigned job id to
/// stdout; with `--wait`, blocks until the job is terminal.
///
/// [`JobSpec`]: memory_conex::serve::JobSpec
fn cmd_submit(args: &[String]) -> Result<u8, CliError> {
    let w = load_workload(args)?;
    let preset = flag_value(args, "--preset")
        .or_else(|| flag_value(args, "--scale"))
        .unwrap_or("fast");
    let _: Preset = preset.parse()?; // reject bad presets before the wire
    let deadline_ms = match flag_value(args, "--deadline") {
        Some(raw) => {
            let hint = "--deadline SECS (positive seconds, fractions allowed)";
            let secs: f64 = raw.parse().map_err(|e| {
                MceError::invalid_arg("--deadline", format!("`{raw}` is not a number: {e}"), hint)
            })?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err(MceError::invalid_arg(
                    "--deadline",
                    format!("must be a positive number of seconds, got `{raw}`"),
                    hint,
                )
                .into());
            }
            (secs * 1000.0).ceil() as u64
        }
        None => 0,
    };
    let spec = memory_conex::serve::JobSpec {
        workload: w,
        preset: preset.to_owned(),
        threads: numeric_flag::<usize>(args, "--threads", 1, "--threads N (N >= 1)")?.unwrap_or(0),
        max_evals: numeric_flag::<u64>(args, "--max-evals", 1, "--max-evals N (N >= 1)")?
            .unwrap_or(0),
        max_archs: numeric_flag::<usize>(args, "--max-archs", 1, "--max-archs N (N >= 1)")?
            .unwrap_or(0),
        deadline_ms,
        retry_budget: numeric_flag::<u32>(args, "--retries", 0, "--retries N (N >= 0)")?
            .unwrap_or(2),
    };
    let dir = serve_dir(args);
    let id = serve_client(dir)?.submit(&spec)?;
    eprintln!(
        "submitted job {id} (workload `{}`, preset {preset}) to {}",
        spec.workload.name(),
        dir.display()
    );
    println!("{id}");
    if args.iter().any(|a| a == "--wait") {
        return wait_for_job(dir, id);
    }
    Ok(0)
}

/// Polls the daemon (re-reading the published address each time, so a
/// daemon restart with a new ephemeral port is followed transparently)
/// until job `id` reaches a terminal state. Unreachable-daemon windows
/// — a crash before its supervisor restarts it — are tolerated for up
/// to ~60 s before giving up.
fn wait_for_job(dir: &std::path::Path, id: u64) -> Result<u8, CliError> {
    let mut unreachable = 0u32;
    loop {
        let state = serve_client(dir)
            .and_then(|c| Ok(c.show(id)?))
            .and_then(|body| Ok(obs::json::parse(&body)?))
            .map(|doc| {
                doc.get("state")
                    .and_then(obs::json::Value::as_str)
                    .unwrap_or("?")
                    .to_owned()
            });
        match state {
            Ok(state) => {
                unreachable = 0;
                let terminal =
                    matches!(state.as_str(), "done" | "failed" | "timed-out" | "canceled");
                if terminal {
                    eprintln!("job {id}: {state}");
                    return Ok(u8::from(state != "done"));
                }
            }
            Err(e) => {
                unreachable += 1;
                if unreachable >= 120 {
                    return Err(format!("job {id}: daemon unreachable while waiting: {e}").into());
                }
            }
        }
        std::thread::sleep(Duration::from_millis(500));
    }
}

/// `mce jobs`: the job-management client (`list`, `show`, `cancel`,
/// `result`, `wait`). Every subcommand re-resolves the daemon address
/// from the serve directory, so it works across daemon restarts.
fn cmd_jobs(args: &[String]) -> Result<u8, CliError> {
    let sub = args.first().ok_or(
        "jobs needs a subcommand: list | show <id> | cancel <id> | result <id> | wait <id>",
    )?;
    let dir = serve_dir(args);
    let job_id = || -> Result<u64, CliError> {
        let raw = args
            .get(1)
            .filter(|a| !a.starts_with("--"))
            .ok_or_else(|| format!("jobs {sub} needs a job id"))?;
        raw.parse()
            .map_err(|e| format!("job id `{raw}` is not a number: {e}").into())
    };
    match sub.as_str() {
        "list" => print!("{}", serve_client(dir)?.list()?),
        "show" => print!("{}", serve_client(dir)?.show(job_id()?)?),
        "cancel" => print!("{}", serve_client(dir)?.cancel(job_id()?)?),
        "result" => {
            let report = serve_client(dir)?.result(job_id()?)?;
            match flag_value(args, "--out") {
                Some(out) => {
                    atomic_write(out, report.as_bytes())
                        .map_err(|e| format!("cannot write report file `{out}`: {e}"))?;
                    eprintln!("wrote report {out}");
                }
                None => print!("{report}"),
            }
        }
        "wait" => return wait_for_job(dir, job_id()?),
        other => return Err(format!("unknown jobs subcommand `{other}`").into()),
    }
    Ok(0)
}

fn cmd_report(args: &[String]) -> Result<(), CliError> {
    let html = args.iter().any(|a| a == "--html");
    let mut files: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => i += 2,
            "--html" => i += 1,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown report flag `{flag}`").into())
            }
            file => {
                files.push(file);
                i += 1;
            }
        }
    }
    if files.is_empty() {
        return Err("report needs at least one run-report JSON file".into());
    }
    let mut reports = Vec::new();
    for path in files {
        let body = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read report file `{path}`: {e}"))?;
        let value = obs::json::parse(&body)
            .map_err(|e| format!("report file `{path}` is not valid JSON: {e}"))?;
        report::check_report_schema(&value).map_err(|e| format!("report file `{path}`: {e}"))?;
        reports.push((path.to_owned(), value));
    }
    let markdown = report::render_markdown(&reports);
    let rendered = if html {
        report::markdown_to_html(&markdown)
    } else {
        markdown
    };
    match flag_value(args, "--out") {
        Some(path) => {
            atomic_write(path, rendered.as_bytes())
                .map_err(|e| format!("cannot write summary `{path}`: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// Loads a swarm directory's supervisor status plus every worker
/// live-status file that currently parses (a worker killed mid-write or
/// not yet started simply has no row — the supervisor summary still
/// renders).
fn load_swarm_dir(
    dir: &str,
) -> Result<(obs::json::Value, Vec<(String, obs::json::Value)>), CliError> {
    let status = swarm::status_path(std::path::Path::new(dir));
    let body = std::fs::read_to_string(&status)
        .map_err(|e| format!("cannot read swarm status `{}`: {e}", status.display()))?;
    let doc = obs::json::parse(&body)
        .map_err(|e| format!("swarm status `{}` is not valid JSON: {e}", status.display()))?;
    match doc.get("swarm_schema").and_then(obs::json::Value::as_u64) {
        Some(swarm::SWARM_STATUS_SCHEMA) => {}
        found => {
            return Err(format!(
                "swarm status `{}` has unsupported swarm_schema {found:?} (expected {})",
                status.display(),
                swarm::SWARM_STATUS_SCHEMA
            )
            .into())
        }
    }
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read swarm directory `{dir}`: {e}"))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("worker-") && name.ends_with(".status.json"))
        .collect();
    names.sort();
    let mut workers = Vec::new();
    for name in names {
        let path = format!("{dir}/{name}");
        if let Ok(doc) = load_live_status(&path) {
            workers.push((name, doc));
        }
    }
    Ok((doc, workers))
}

/// Renders one `mce top` frame for a swarm directory — the supervisor
/// summary plus one line per worker — and reports whether the swarm is
/// still active (running or merging).
fn render_swarm_frame(dir: &str, width: usize) -> Result<(String, bool), CliError> {
    let (doc, workers) = load_swarm_dir(dir)?;
    let active = matches!(
        doc.get("status").and_then(obs::json::Value::as_str),
        Some("running" | "merging")
    );
    Ok((
        live::render_swarm_overview(dir, &doc, &workers, width),
        active,
    ))
}

/// Renders one `mce top` frame for a serve directory — the daemon
/// summary plus one line per job with a live-status file — and reports
/// whether the daemon is still admitting (not draining).
fn render_serve_frame(dir: &str) -> Result<(String, bool), CliError> {
    let status = memory_conex::serve::status_path(std::path::Path::new(dir));
    let body = std::fs::read_to_string(&status)
        .map_err(|e| format!("cannot read serve status `{}`: {e}", status.display()))?;
    let doc = obs::json::parse(&body)
        .map_err(|e| format!("serve status `{}` is not valid JSON: {e}", status.display()))?;
    match doc.get("serve_schema").and_then(obs::json::Value::as_u64) {
        Some(memory_conex::serve::SERVE_SCHEMA) => {}
        found => {
            return Err(format!(
                "serve status `{}` has unsupported serve_schema {found:?} (expected {})",
                status.display(),
                memory_conex::serve::SERVE_SCHEMA
            )
            .into())
        }
    }
    let active = doc.get("draining") != Some(&obs::json::Value::Bool(true));
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read serve directory `{dir}`: {e}"))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("job-") && name.ends_with(".status.json"))
        .collect();
    // Numeric job-id order, not lexicographic (job-10 after job-2).
    names.sort_by_key(|name| {
        name.trim_start_matches("job-")
            .trim_end_matches(".status.json")
            .parse::<u64>()
            .unwrap_or(u64::MAX)
    });
    let mut jobs = Vec::new();
    for name in names {
        if let Ok(doc) = load_live_status(&format!("{dir}/{name}")) {
            jobs.push((name, doc));
        }
    }
    Ok((live::render_serve_overview(dir, &doc, &jobs), active))
}

/// Loads and schema-checks one live-status file.
fn load_live_status(path: &str) -> Result<obs::json::Value, CliError> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read status file `{path}`: {e}"))?;
    let doc = obs::json::parse(&body)
        .map_err(|e| format!("status file `{path}` is not valid JSON: {e}"))?;
    match doc.get("live_schema").and_then(obs::json::Value::as_u64) {
        Some(live::LIVE_SCHEMA) => Ok(doc),
        found => Err(format!(
            "status file `{path}` has unsupported live_schema {found:?} (expected {})",
            live::LIVE_SCHEMA
        )
        .into()),
    }
}

/// The terminal's column count, re-queried on demand so a resize takes
/// effect on the next refresh: `COLUMNS` when set (shells export it),
/// `tput cols` as a fallback, 80 when neither answers. Floored at 20 —
/// below that no dashboard layout is sensible.
fn terminal_width() -> usize {
    let from_env = std::env::var("COLUMNS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    let width = from_env.or_else(|| {
        std::process::Command::new("tput")
            .arg("cols")
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .and_then(|s| s.trim().parse::<usize>().ok())
    });
    width.unwrap_or(80).max(20)
}

/// `mce top`: watches a `--live-status` file. On a TTY it refreshes a
/// full-screen dashboard every `--interval` until the run leaves the
/// `running` state; with `--once` or a non-TTY stdout it prints a single
/// plain-text snapshot, so scripts and CI can capture it.
///
/// The status file is rewritten atomically by the exploring process, so
/// every read sees a complete document. A *missing* file is transient —
/// the writer may not have started yet, or is between a checkpoint
/// delete and its first write — so the watch shows a "waiting for
/// writer" frame and keeps polling. A *malformed* file is not: ten
/// consecutive parse failures end the watch with the error instead of
/// spinning forever.
fn cmd_top(args: &[String]) -> Result<(), CliError> {
    use std::io::{IsTerminal, Write as _};

    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("top needs a live-status file or swarm directory argument")?;
    let interval =
        numeric_flag::<u64>(args, "--interval", 50, "--interval MS (MS >= 50)")?.unwrap_or(500);
    let once = args.iter().any(|a| a == "--once");
    // A directory is a swarm or a serve daemon: aggregate the
    // supervisor's swarm.json (or the daemon's serve.json) with the
    // per-worker/per-job live-status files instead of one dashboard.
    let is_dir = std::path::Path::new(path).is_dir();
    let is_serve = is_dir && memory_conex::serve::status_path(std::path::Path::new(path)).exists();
    let render = |width: usize| -> Result<(String, bool), CliError> {
        if is_serve {
            render_serve_frame(path)
        } else if is_dir {
            render_swarm_frame(path, width)
        } else {
            let doc = load_live_status(path)?;
            let active = doc.get("status").and_then(obs::json::Value::as_str) == Some("running");
            Ok((live::render_dashboard_with_width(path, &doc, width), active))
        }
    };
    if once || !std::io::stdout().is_terminal() {
        print!("{}", render(terminal_width())?.0);
        return Ok(());
    }
    // What "the writer hasn't started yet" looks like: the status file
    // itself, or for a swarm/serve directory its summary JSON.
    let watched = if is_serve {
        memory_conex::serve::status_path(std::path::Path::new(path))
    } else if is_dir {
        swarm::status_path(std::path::Path::new(path))
    } else {
        std::path::PathBuf::from(path)
    };
    let mut failures = 0u32;
    loop {
        // Re-measured every refresh: a resized terminal gets a
        // re-fitted frame without restarting the watch.
        let width = terminal_width();
        let show = |frame: &str| {
            let mut stdout = std::io::stdout().lock();
            // Clear + home, then the frame: one write per refresh.
            let _ = write!(stdout, "\x1b[2J\x1b[H{frame}");
            let _ = stdout.flush();
        };
        if !watched.exists() {
            // Transient by design — never counts toward the failure cap.
            show(&format!("mce top — waiting for writer… ({path})\n"));
            std::thread::sleep(Duration::from_millis(interval));
            continue;
        }
        match render(width) {
            Ok((frame, active)) => {
                failures = 0;
                show(&frame);
                if !active {
                    return Ok(());
                }
            }
            Err(e) => {
                failures += 1;
                if failures >= 10 {
                    return Err(e);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(interval));
    }
}

/// `mce export-metrics`: renders a live-status or run-report JSON file
/// as OpenMetrics text (to stdout or `--out FILE`), so any
/// Prometheus-compatible scraper can ingest a run's registries.
fn cmd_export_metrics(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("export-metrics needs a live-status or run-report JSON file")?;
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read metrics source `{path}`: {e}"))?;
    let doc = obs::json::parse(&body)
        .map_err(|e| format!("metrics source `{path}` is not valid JSON: {e}"))?;
    let text = live::openmetrics_from_value(&doc).map_err(|e| format!("`{path}`: {e}"))?;
    match flag_value(args, "--out") {
        Some(out) => {
            atomic_write(out, text.as_bytes())
                .map_err(|e| format!("cannot write metrics `{out}`: {e}"))?;
            eprintln!("wrote {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Offline eval-cache spill validation and repair.
///
/// Strictly parses every entry: a fully valid spill reports its entry
/// count; one with corrupt entries lists how many and fails — unless
/// `--repair` is given, which atomically rewrites the spill with the
/// corrupt entries dropped (the same salvage `mce explore --eval-cache`
/// applies at load time, made permanent). Document-level damage — not
/// JSON, wrong version — is never repairable.
///
/// Exit-code contract: 0 when the spill was already clean, 2 when
/// `--repair` dropped corrupt entries (repaired ≠ clean, so CI scripts
/// can tell them apart), 1 on any error (corruption without `--repair`,
/// unrepairable document damage, I/O failures).
fn cmd_cache_check(args: &[String]) -> Result<u8, CliError> {
    use memory_conex::conex::EvalCache;

    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("cache-check needs a spill file argument")?;
    let capacity = numeric_flag::<usize>(args, "--capacity", 1, "--capacity N (N >= 1)")?
        .unwrap_or(memory_conex::conex::eval_cache::DEFAULT_CAPACITY);
    let repair = args.iter().any(|a| a == "--repair");
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read spill `{path}`: {e}"))?;
    // Strict first: a clean bill of health needs every entry to parse.
    match EvalCache::from_spill_json(&body, capacity) {
        Ok(cache) => {
            println!("{path}: valid, {} entries", cache.len());
            Ok(0)
        }
        Err(first_error) => {
            // Entry-level damage salvages; document-level damage re-errors.
            let (cache, dropped) = EvalCache::from_spill_json_salvage(&body, capacity)
                .map_err(|_| format!("{path}: unrepairable: {first_error}"))?;
            println!(
                "{path}: {} corrupt entr{} ({} intact)",
                dropped,
                if dropped == 1 { "y" } else { "ies" },
                cache.len()
            );
            if !repair {
                return Err(format!(
                    "{path}: corrupt entries found (re-run with --repair to drop them)"
                )
                .into());
            }
            cache
                .save(path)
                .map_err(|e| format!("cannot rewrite spill `{path}`: {e}"))?;
            println!(
                "{path}: repaired, {} entries kept, {dropped} dropped",
                cache.len()
            );
            Ok(2)
        }
    }
}

fn cmd_bench_gate(args: &[String]) -> Result<(), CliError> {
    let baseline_path =
        flag_value(args, "--baseline").unwrap_or("crates/bench/BENCH_eval.baseline.json");
    let current_path = flag_value(args, "--current").unwrap_or("BENCH_eval.json");
    let tolerance: f64 = flag_value(args, "--tolerance").unwrap_or("0.2").parse()?;
    if !tolerance.is_finite() || tolerance < 0.0 {
        return Err(format!("--tolerance must be a non-negative number, got {tolerance}").into());
    }
    let warn_only = args.iter().any(|a| a == "--warn-only");
    let enforce_pinned = args.iter().any(|a| a == "--enforce-pinned");
    // The two fields whose regressions are design-contract violations,
    // not machine-speed noise; `--enforce-pinned` fails on exactly these
    // and downgrades everything else to a warning.
    const PINNED_FIELDS: [&str; 2] = ["block_replay_speedup", "block_replay_cancellable_overhead"];
    let load = |path: &str| -> Result<obs::json::Value, CliError> {
        let body = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read bench summary `{path}`: {e}"))?;
        obs::json::parse(&body)
            .map_err(|e| format!("bench summary `{path}` is not valid JSON: {e}").into())
    };
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    // --record appends before the verdict, so regressing runs land in
    // the trajectory too — those are exactly the ones worth studying
    // with `mce diff --bench`.
    if args.iter().any(|a| a == "--record") {
        use std::io::Write as _;
        let trajectory = flag_value(args, "--trajectory").unwrap_or("BENCH_trajectory.jsonl");
        let body = std::fs::read_to_string(current_path)
            .map_err(|e| format!("cannot read bench summary `{current_path}`: {e}"))?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(trajectory)
            .map_err(|e| format!("cannot open trajectory `{trajectory}`: {e}"))?;
        writeln!(file, "{}", compact_json(&body))
            .map_err(|e| format!("cannot append to trajectory `{trajectory}`: {e}"))?;
        eprintln!("recorded {current_path} into {trajectory}");
    }
    let checks = report::bench_gate_compare(&baseline, &current, tolerance)?;
    println!(
        "bench gate: `{current_path}` vs baseline `{baseline_path}` (tolerance {:.0}%)",
        tolerance * 100.0
    );
    let mut regressed = false;
    let mut pinned_regressed = false;
    for c in &checks {
        regressed |= c.regressed;
        pinned_regressed |= c.regressed && PINNED_FIELDS.contains(&c.field);
        println!(
            "  {:<34} baseline {:>12.3}  current {:>12.3}  ratio {:>5.2}  tol {:>3.0}%  {}",
            c.field,
            c.baseline,
            c.current,
            c.ratio,
            c.tolerance * 100.0,
            if c.regressed { "REGRESSED" } else { "ok" }
        );
    }
    if regressed {
        // --warn-only never fails; --enforce-pinned fails only when a
        // pinned contract field regressed; the default fails on any.
        let fails = if warn_only {
            false
        } else if enforce_pinned {
            pinned_regressed
        } else {
            true
        };
        if fails {
            return Err("bench gate: regression beyond tolerance".into());
        }
        eprintln!(
            "bench gate: regression beyond tolerance ({}, not failing)",
            if warn_only {
                "--warn-only"
            } else {
                "--enforce-pinned: no pinned field regressed"
            }
        );
    } else {
        println!("bench gate: within tolerance");
    }
    Ok(())
}

/// Compacts a JSON document to one line by stripping whitespace outside
/// string literals — the trajectory stores one run per line. The input
/// is already-validated JSON, so no structural checks here.
fn compact_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            in_string = true;
            out.push(c);
        } else if !c.is_whitespace() {
            out.push(c);
        }
    }
    out
}

fn archive_at(args: &[String]) -> memory_conex::RunArchive {
    memory_conex::RunArchive::open(flag_value(args, "--archive").unwrap_or("target/mce-runs"))
}

/// `mce runs`: the content-addressed run archive. `add` stores a report
/// under the digest of its deterministic prefix (a re-run of the same
/// configuration is a duplicate, not a second entry), `list` summarizes
/// the index, `show` prints an archived report by digest prefix, and
/// `gc` prunes old entries and orphaned objects.
fn cmd_runs(args: &[String]) -> Result<(), CliError> {
    let sub = args
        .first()
        .ok_or("runs needs a subcommand: add | list | show | gc")?;
    let archive = archive_at(args);
    match sub.as_str() {
        "add" => {
            let path = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("runs add needs a run-report JSON file")?;
            let body = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read report file `{path}`: {e}"))?;
            let outcome = archive.add(&body).map_err(|e| format!("`{path}`: {e}"))?;
            if outcome.duplicate {
                println!("duplicate of {}", outcome.digest);
            } else {
                println!("archived {}", outcome.digest);
            }
            Ok(())
        }
        "list" => {
            let entries = archive.entries()?;
            if entries.is_empty() {
                println!("archive {} is empty", archive.root().display());
            } else {
                print!("{}", memory_conex::archive::render_listing(&entries));
            }
            Ok(())
        }
        "show" => {
            let prefix = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("runs show needs a digest (prefixes resolve)")?;
            let (_digest, text) = archive.show(prefix)?;
            print!("{text}");
            Ok(())
        }
        "gc" => {
            let keep = numeric_flag::<usize>(args, "--keep", 1, "--keep N (N >= 1)")?;
            let stats = archive.gc(keep)?;
            println!(
                "gc: removed {} index entr{}, {} object file(s)",
                stats.entries_removed,
                if stats.entries_removed == 1 {
                    "y"
                } else {
                    "ies"
                },
                stats.objects_removed
            );
            Ok(())
        }
        other => Err(format!("unknown runs subcommand `{other}` (add | list | show | gc)").into()),
    }
}

/// Resolves a diff operand: an existing file wins; otherwise the name
/// is tried as an archive digest prefix.
fn resolve_diff_operand(
    archive: &memory_conex::RunArchive,
    operand: &str,
) -> Result<String, CliError> {
    if std::path::Path::new(operand).exists() {
        return std::fs::read_to_string(operand)
            .map_err(|e| format!("cannot read `{operand}`: {e}").into());
    }
    match archive.show(operand) {
        Ok((_digest, text)) => Ok(text),
        Err(e) => Err(format!(
            "`{operand}` is neither a file nor a digest in {}: {e}",
            archive.root().display()
        )
        .into()),
    }
}

/// `mce diff`: structural comparison of two runs — report files,
/// live-status files, or archived digests. Exits 0 iff the
/// deterministic sections are byte-identical (wall clock, cache state
/// and provenance never affect the verdict), 1 when they differ. With
/// `--bench` it renders the recorded bench trajectory instead.
fn cmd_diff(args: &[String]) -> Result<u8, CliError> {
    if args.iter().any(|a| a == "--bench") {
        let path = args
            .iter()
            .position(|a| a == "--bench")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .filter(|v| !v.starts_with("--"))
            .unwrap_or("BENCH_trajectory.jsonl");
        let body = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trajectory `{path}`: {e}"))?;
        let markdown = memory_conex::diff::render_bench_trajectory(&body)?;
        emit_diff(args, markdown)?;
        return Ok(0);
    }
    let mut operands = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(
                    args.get(i.wrapping_sub(1)).map(String::as_str),
                    Some("--out" | "--archive")
                )
        })
        .map(|(_, a)| a.as_str());
    let (a, b) = match (operands.next(), operands.next(), operands.next()) {
        (Some(a), Some(b), None) => (a, b),
        _ => return Err("diff needs exactly two runs: files or archive digests".into()),
    };
    let archive = archive_at(args);
    let text_a = resolve_diff_operand(&archive, a)?;
    let text_b = resolve_diff_operand(&archive, b)?;
    let outcome = memory_conex::diff::diff_texts(a, &text_a, b, &text_b)?;
    emit_diff(args, outcome.markdown.clone())?;
    Ok(u8::from(!outcome.identical))
}

/// Writes a rendered diff to `--out` (or stdout), as HTML when `--html`.
fn emit_diff(args: &[String], markdown: String) -> Result<(), CliError> {
    let rendered = if args.iter().any(|a| a == "--html") {
        report::markdown_to_html(&markdown)
    } else {
        markdown
    };
    match flag_value(args, "--out") {
        Some(path) => {
            atomic_write(path, rendered.as_bytes())
                .map_err(|e| format!("cannot write diff `{path}`: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let args = s(&["vocoder", "--trace", "123", "--cache", "4"]);
        assert_eq!(flag_value(&args, "--trace"), Some("123"));
        assert_eq!(flag_value(&args, "--cache"), Some("4"));
        assert_eq!(flag_value(&args, "--missing"), None);
    }

    #[test]
    fn builtin_workloads_load() {
        for name in ["compress", "li", "vocoder", "adpcm", "jpeg", "mix"] {
            assert!(load_workload(&s(&[name])).is_ok(), "{name}");
        }
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = load_workload(&s(&["/nonexistent/w.json"])).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn template_round_trips_through_serde() {
        let template = WorkloadBuilder::new("t")
            .data_structure(DataStructure::new("d", 1024, 4, AccessPattern::Random))
            .build();
        let json = serde_json::to_string(&template).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(template, back);
    }

    #[test]
    fn explore_rejects_bad_threads() {
        let err = cmd_explore(&s(&["vocoder", "--threads", "abc"])).unwrap_err();
        assert!(err.to_string().contains("--threads"), "{err}");
    }

    #[test]
    fn numeric_flags_reject_garbage_table_driven() {
        // Every rejected value renders as a typed InvalidArg: the flag
        // name, the reason, and a one-line usage hint — never a panic or
        // a silent clamp.
        let cases: &[(&[&str], &str)] = &[
            (&["explore", "vocoder", "--threads", "0"], "--threads"),
            (&["explore", "vocoder", "--threads", "-2"], "--threads"),
            (&["explore", "vocoder", "--threads", "abc"], "--threads"),
            (
                &[
                    "explore",
                    "vocoder",
                    "--threads",
                    "99999999999999999999999999",
                ],
                "--threads",
            ),
            (&["explore", "vocoder", "--max-evals", "0"], "--max-evals"),
            (&["explore", "vocoder", "--max-evals", "ten"], "--max-evals"),
            (&["explore", "vocoder", "--max-archs", "0"], "--max-archs"),
            (&["explore", "vocoder", "--max-archs", "-1"], "--max-archs"),
            (&["explore", "vocoder", "--deadline", "0"], "--deadline"),
            (&["explore", "vocoder", "--deadline", "-1.5"], "--deadline"),
            (&["explore", "vocoder", "--deadline", "NaN"], "--deadline"),
            (&["explore", "vocoder", "--deadline", "inf"], "--deadline"),
            (&["explore", "vocoder", "--deadline", "soon"], "--deadline"),
            (
                &["explore", "vocoder", "--candidate-timeout", "0"],
                "--candidate-timeout",
            ),
            (
                &["explore", "vocoder", "--candidate-timeout", "2.5"],
                "--candidate-timeout",
            ),
            (
                &[
                    "explore",
                    "vocoder",
                    "--checkpoint",
                    "c.json",
                    "--checkpoint-every",
                    "0",
                ],
                "--checkpoint-every",
            ),
            (
                &[
                    "explore",
                    "vocoder",
                    "--live-status",
                    "s.json",
                    "--live-every",
                    "5",
                ],
                "--live-every",
            ),
            (
                &[
                    "explore",
                    "vocoder",
                    "--live-status",
                    "s.json",
                    "--live-every",
                    "soon",
                ],
                "--live-every",
            ),
            (&["swarm", "vocoder", "-j", "0"], "-j"),
            (&["swarm", "vocoder", "--workers", "abc"], "--workers"),
            (&["swarm", "vocoder", "--threads", "0"], "--threads"),
            (&["swarm", "vocoder", "--leases", "0"], "--leases"),
            (
                &["swarm", "vocoder", "--heartbeat-timeout", "50"],
                "--heartbeat-timeout",
            ),
            (
                &["swarm", "vocoder", "--restart-budget", "-1"],
                "--restart-budget",
            ),
            (
                &["swarm", "vocoder", "--fault-worker", "first"],
                "--fault-worker",
            ),
            (&["top", "s.json", "--interval", "0"], "--interval"),
            (&["top", "s.json", "--interval", "abc"], "--interval"),
            (&["classify", "vocoder", "--trace", "0"], "--trace"),
            (&["classify", "vocoder", "--trace", "-5"], "--trace"),
            (&["simulate", "vocoder", "--cache", "-1"], "--cache"),
            (&["simulate", "vocoder", "--cache", "0"], "--cache"),
            (
                &["cache-check", "spill.json", "--capacity", "0"],
                "--capacity",
            ),
            (
                &["cache-check", "spill.json", "--capacity", "lots"],
                "--capacity",
            ),
        ];
        for (args, flag) in cases {
            let err = run(&s(args)).unwrap_err().to_string();
            assert!(
                err.starts_with("invalid argument:"),
                "{args:?} should render a typed InvalidArg, got: {err}"
            );
            assert!(err.contains(flag), "{args:?}: {err}");
            assert!(
                err.contains("usage:"),
                "{args:?} should carry a hint: {err}"
            );
        }
    }

    #[test]
    fn explore_rejects_bad_scale() {
        let err = cmd_explore(&s(&["vocoder", "--scale", "huge"])).unwrap_err();
        assert!(err.to_string().contains("unknown preset"), "{err}");
    }

    #[test]
    fn explore_accepts_preset_alias() {
        // `--preset` is parsed through the same path as `--scale` and wins
        // when both are present.
        let err = cmd_explore(&s(&["vocoder", "--preset", "huge"])).unwrap_err();
        assert!(err.to_string().contains("unknown preset"), "{err}");
        let err =
            cmd_explore(&s(&["vocoder", "--preset", "bogus", "--scale", "fast"])).unwrap_err();
        assert!(err.to_string().contains("unknown preset"), "{err}");
    }

    #[test]
    fn explore_rejects_bad_checkpoint_flags() {
        let err = cmd_explore(&s(&["vocoder", "--checkpoint-every", "2"])).unwrap_err();
        assert!(err.to_string().contains("--checkpoint FILE"), "{err}");
        // A valueless --checkpoint must not silently drop crash safety.
        let err = cmd_explore(&s(&["vocoder", "--checkpoint"])).unwrap_err();
        assert!(err.to_string().contains("FILE argument"), "{err}");
        let err = cmd_explore(&s(&["vocoder", "--checkpoint", "--progress"])).unwrap_err();
        assert!(err.to_string().contains("FILE argument"), "{err}");
        let err = cmd_explore(&s(&[
            "vocoder",
            "--checkpoint",
            "ck.json",
            "--checkpoint-every",
            "0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        let err = cmd_explore(&s(&[
            "vocoder",
            "--checkpoint",
            "ck.json",
            "--checkpoint-every",
            "abc",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--checkpoint-every"), "{err}");
    }

    #[test]
    fn swarm_worker_rejects_bad_lease_arguments() {
        // The hidden worker command validates as strictly as the public
        // ones: a supervisor bug must surface as a typed error, not a
        // worker exploring the wrong range.
        let err = cmd_swarm_worker(&s(&["vocoder"])).unwrap_err();
        assert!(err.to_string().contains("--range"), "{err}");
        let err = cmd_swarm_worker(&s(&["vocoder", "--range", "5"])).unwrap_err();
        assert!(err.to_string().contains("LO:HI"), "{err}");
        let err = cmd_swarm_worker(&s(&["vocoder", "--range", "a:3"])).unwrap_err();
        assert!(err.to_string().contains("not a number"), "{err}");
        let err = cmd_swarm_worker(&s(&["vocoder", "--range", "0:2"])).unwrap_err();
        assert!(err.to_string().contains("--lease"), "{err}");
        let err = cmd_swarm_worker(&s(&["vocoder", "--range", "0:2", "--lease", "0"])).unwrap_err();
        assert!(err.to_string().contains("--slot"), "{err}");
        let err = cmd_swarm_worker(&s(&[
            "vocoder", "--range", "0:2", "--lease", "0", "--slot", "0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--dir"), "{err}");
    }

    #[test]
    fn explore_rejects_bad_live_flags() {
        // A valueless --live-status must not silently drop monitoring.
        let err = cmd_explore(&s(&["vocoder", "--live-status"])).unwrap_err();
        assert!(err.to_string().contains("FILE argument"), "{err}");
        let err = cmd_explore(&s(&["vocoder", "--live-status", "--progress"])).unwrap_err();
        assert!(err.to_string().contains("FILE argument"), "{err}");
        let err = cmd_explore(&s(&["vocoder", "--live-every", "200"])).unwrap_err();
        assert!(err.to_string().contains("--live-status FILE"), "{err}");
    }

    #[test]
    fn top_validates_its_input() {
        let err = cmd_top(&s(&["--once"])).unwrap_err();
        assert!(err.to_string().contains("status file"), "{err}");
        let err = cmd_top(&s(&["/nonexistent/status.json", "--once"])).unwrap_err();
        assert!(err.to_string().contains("cannot read"), "{err}");
        let dir = std::env::temp_dir();
        let bad = dir.join(format!("mce_top_bad_{}.json", std::process::id()));
        std::fs::write(&bad, "{\"live_schema\": 99}").unwrap();
        let err = cmd_top(&s(&[bad.to_str().unwrap(), "--once"])).unwrap_err();
        std::fs::remove_file(&bad).ok();
        assert!(err.to_string().contains("unsupported live_schema"), "{err}");
    }

    #[test]
    fn export_metrics_renders_openmetrics_from_a_report() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let src = dir.join(format!("mce_xm_src_{pid}.json"));
        let out = dir.join(format!("mce_xm_out_{pid}.txt"));
        std::fs::write(
            &src,
            "{\"schema\": 1, \"counters\": {\"conex.simulated\": 7}, \"gauges\": {}, \
             \"wall_clock\": {\"budget\": {}, \"histograms\": []}}",
        )
        .unwrap();
        cmd_export_metrics(&s(&[src.to_str().unwrap(), "--out", out.to_str().unwrap()])).unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&out).ok();
        assert!(text.contains("mce_conex_simulated_total 7"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
        let err = cmd_export_metrics(&s(&["/nonexistent/x.json"])).unwrap_err();
        assert!(err.to_string().contains("cannot read"), "{err}");
        let err = cmd_export_metrics(&s(&[])).unwrap_err();
        assert!(err.to_string().contains("export-metrics needs"), "{err}");
    }

    #[test]
    fn cache_check_validates_and_repairs() {
        use memory_conex::conex::eval_cache::format_spill_entry;
        use memory_conex::conex::{CanonKey, EvalCache, Metrics};

        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let path = dir.join(format!("mce_cachecheck_{pid}.json"));
        let path_s = path.to_str().unwrap();

        // A valid spill passes without flags.
        let cache = EvalCache::new();
        cache.insert(
            CanonKey { hi: 1, lo: 2 },
            Metrics {
                cost_gates: 10,
                latency_cycles: 1.0,
                energy_nj: 0.5,
            },
        );
        cache.save(&path).unwrap();
        assert_eq!(cmd_cache_check(&s(&[path_s])).unwrap(), 0);

        // Corrupt one entry: reported and failed without --repair,
        // dropped with it, then clean again.
        let [key, cost, lat, energy, check] = format_spill_entry(
            &CanonKey { hi: 3, lo: 4 },
            &Metrics {
                cost_gates: 20,
                latency_cycles: 2.0,
                energy_nj: 1.0,
            },
        );
        let lat_bad = lat.replace(char::from(lat.as_bytes()[0]), "f");
        let spill = cache.to_spill_json().replace(
            "]}",
            &format!(",[\"{key}\",\"{cost}\",\"{lat_bad}\",\"{energy}\",\"{check}\"]]}}"),
        );
        std::fs::write(&path, spill).unwrap();
        let err = cmd_cache_check(&s(&[path_s])).unwrap_err();
        assert!(err.to_string().contains("--repair"), "{err}");
        // A repair that dropped entries exits 2 (repaired ≠ clean) …
        assert_eq!(cmd_cache_check(&s(&[path_s, "--repair"])).unwrap(), 2);
        // … and the now-clean spill is back to exit 0, --repair or not.
        assert_eq!(cmd_cache_check(&s(&[path_s])).unwrap(), 0);
        assert_eq!(
            cmd_cache_check(&s(&[path_s, "--repair"])).unwrap(),
            0,
            "--repair on a clean spill exits 0"
        );

        // Document-level damage is unrepairable.
        std::fs::write(&path, "{\"version\":999,\"entries\":[]}").unwrap();
        let err = cmd_cache_check(&s(&[path_s, "--repair"])).unwrap_err();
        assert!(err.to_string().contains("unrepairable"), "{err}");

        std::fs::remove_file(&path).ok();
        let err = cmd_cache_check(&s(&["--repair"])).unwrap_err();
        assert!(err.to_string().contains("spill file"), "{err}");
    }

    #[test]
    fn report_rejects_missing_and_malformed_inputs() {
        let err = cmd_report(&s(&[])).unwrap_err();
        assert!(err.to_string().contains("at least one"), "{err}");
        let err = cmd_report(&s(&["/nonexistent/report.json"])).unwrap_err();
        assert!(err.to_string().contains("cannot read"), "{err}");
        let err = cmd_report(&s(&["file.json", "--frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown report flag"), "{err}");

        let dir = std::env::temp_dir();
        let bad_schema = dir.join(format!("mce_bad_schema_{}.json", std::process::id()));
        std::fs::write(&bad_schema, "{\"schema\": 999}").unwrap();
        let err = cmd_report(&s(&[bad_schema.to_str().unwrap()])).unwrap_err();
        std::fs::remove_file(&bad_schema).ok();
        // The typed SchemaVersion error names the artifact and both
        // versions.
        assert!(
            err.to_string().contains("unsupported run report schema"),
            "{err}"
        );
        assert!(err.to_string().contains("999"), "{err}");
    }

    #[test]
    fn bench_gate_passes_and_fails_by_tolerance() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let base = dir.join(format!("mce_gate_base_{pid}.json"));
        let good = dir.join(format!("mce_gate_good_{pid}.json"));
        let slow = dir.join(format!("mce_gate_slow_{pid}.json"));
        std::fs::write(
            &base,
            "{\"per_access_dispatch_ns\": 100, \"block_replay_ns\": 50, \
             \"block_replay_speedup\": 2.0, \
             \"block_replay_cancellable_overhead\": 1.0}",
        )
        .unwrap();
        std::fs::write(
            &good,
            "{\"per_access_dispatch_ns\": 105, \"block_replay_ns\": 52, \
             \"block_replay_speedup\": 2.0, \
             \"block_replay_cancellable_overhead\": 1.01}",
        )
        .unwrap();
        std::fs::write(
            &slow,
            "{\"per_access_dispatch_ns\": 100, \"block_replay_ns\": 65, \
             \"block_replay_speedup\": 1.5, \
             \"block_replay_cancellable_overhead\": 1.0}",
        )
        .unwrap();
        let gate = |current: &std::path::Path, extra: &[&str]| {
            let mut args = vec![
                "--baseline".to_owned(),
                base.to_str().unwrap().to_owned(),
                "--current".to_owned(),
                current.to_str().unwrap().to_owned(),
            ];
            args.extend(extra.iter().map(|x| x.to_string()));
            cmd_bench_gate(&args)
        };
        assert!(gate(&base, &[]).is_ok(), "identical summaries pass");
        assert!(gate(&good, &[]).is_ok(), "+5% stays within 20% tolerance");
        let err = gate(&slow, &[]).unwrap_err();
        assert!(err.to_string().contains("regression"), "{err}");
        assert!(
            gate(&slow, &["--warn-only"]).is_ok(),
            "warn-only never fails"
        );
        // --enforce-pinned: a pinned-field regression (the speedup drop
        // in `slow`) still fails; a wall-time-only regression warns.
        assert!(
            gate(&slow, &["--enforce-pinned"]).is_err(),
            "pinned speedup regression fails under --enforce-pinned"
        );
        let dispatch_only = dir.join(format!("mce_gate_dispatch_{pid}.json"));
        std::fs::write(
            &dispatch_only,
            "{\"per_access_dispatch_ns\": 130, \"block_replay_ns\": 50, \
             \"block_replay_speedup\": 2.0, \
             \"block_replay_cancellable_overhead\": 1.0}",
        )
        .unwrap();
        assert!(gate(&dispatch_only, &[]).is_err(), "default gate fails it");
        assert!(
            gate(&dispatch_only, &["--enforce-pinned"]).is_ok(),
            "non-pinned regression only warns under --enforce-pinned"
        );
        std::fs::remove_file(&dispatch_only).ok();
        assert!(
            gate(&good, &["--tolerance", "0.01"]).is_err(),
            "tight tolerance flags +5%"
        );
        let err = gate(&good, &["--tolerance", "-1"]).unwrap_err();
        assert!(err.to_string().contains("non-negative"), "{err}");
        std::fs::remove_file(&base).ok();
        std::fs::remove_file(&good).ok();
        std::fs::remove_file(&slow).ok();
    }

    #[test]
    fn classify_and_simulate_run() {
        assert!(cmd_classify(&s(&["vocoder", "--trace", "2000"])).is_ok());
        assert!(cmd_simulate(&s(&["vocoder", "--cache", "2", "--trace", "2000"])).is_ok());
    }

    #[test]
    fn compact_json_strips_whitespace_outside_strings_only() {
        assert_eq!(
            compact_json("{\n  \"a\": 1,\n  \"b\": \"x y\\\"z \"\n}"),
            "{\"a\":1,\"b\":\"x y\\\"z \"}"
        );
        assert_eq!(compact_json("[1, 2,\t3]"), "[1,2,3]");
    }

    fn sample_report_text(enumerated: u64, elapsed: f64) -> String {
        format!(
            "{{\n  \"schema\": 1,\n  \"workload\": \"vocoder\",\n  \
             \"workload_digest\": \"abcd\",\n  \"status\": \"completed\",\n  \
             \"stop_reason\": null,\n  \"config\": {{\n    \"conex_trace_len\": 15000,\n    \
             \"local_keep\": 16\n  }},\n  \"counters\": {{\n    \
             \"conex.candidates_enumerated\": {enumerated}\n  }},\n  \
             \"wall_clock\": {{\"elapsed_s\": {elapsed}}}\n}}\n"
        )
    }

    #[test]
    fn runs_and_diff_drive_the_archive_end_to_end() {
        let dir = std::env::temp_dir().join(format!("mce_cli_runs_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let archive_dir = dir.join("archive");
        let archive_flag = [
            "--archive".to_owned(),
            archive_dir.to_str().unwrap().to_owned(),
        ];
        let write = |name: &str, text: &str| {
            let p = dir.join(name);
            std::fs::write(&p, text).unwrap();
            p.to_str().unwrap().to_owned()
        };
        let a = write("a.json", &sample_report_text(120, 1.5));
        let rerun = write("rerun.json", &sample_report_text(120, 9.0));
        let b = write("b.json", &sample_report_text(220, 1.5));

        let with_archive = |base: &[&str]| {
            let mut v = s(base);
            v.extend(archive_flag.iter().cloned());
            v
        };
        // add / duplicate / list / gc.
        cmd_runs(&with_archive(&["add", &a])).unwrap();
        cmd_runs(&with_archive(&["add", &rerun])).unwrap();
        cmd_runs(&with_archive(&["add", &b])).unwrap();
        cmd_runs(&with_archive(&["list"])).unwrap();
        cmd_runs(&with_archive(&["gc", "--keep", "1"])).unwrap();
        let err = cmd_runs(&with_archive(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown runs subcommand"), "{err}");
        let err = cmd_runs(&s(&[])).unwrap_err();
        assert!(err.to_string().contains("subcommand"), "{err}");

        // diff: same deterministic prefix (different wall clock) → 0;
        // perturbed counters → 1.
        assert_eq!(cmd_diff(&with_archive(&[&a, &rerun])).unwrap(), 0);
        assert_eq!(cmd_diff(&with_archive(&[&a, &b])).unwrap(), 1);
        let out_md = dir.join("diff.md");
        assert_eq!(
            cmd_diff(&with_archive(&[&a, &b, "--out", out_md.to_str().unwrap()])).unwrap(),
            1
        );
        let md = std::fs::read_to_string(&out_md).unwrap();
        assert!(md.contains("Deterministic sections differ"), "{md}");
        assert!(md.contains("conex.candidates_enumerated"), "{md}");
        let out_html = dir.join("diff.html");
        cmd_diff(&with_archive(&[
            &a,
            &b,
            "--html",
            "--out",
            out_html.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(std::fs::read_to_string(&out_html)
            .unwrap()
            .starts_with("<!DOCTYPE html>"));

        // A digest prefix resolves an operand once the run is archived.
        let digest = memory_conex::RunArchive::open(&archive_dir)
            .entries()
            .unwrap()
            .last()
            .unwrap()
            .digest
            .clone();
        assert_eq!(cmd_diff(&with_archive(&[&b, &digest[..8]])).unwrap(), 0);
        let err = cmd_diff(&with_archive(&["ffffffff", &b])).unwrap_err();
        assert!(
            err.to_string().contains("neither a file nor a digest"),
            "{err}"
        );
        let err = cmd_diff(&with_archive(&[&a])).unwrap_err();
        assert!(err.to_string().contains("exactly two"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_record_builds_a_renderable_trajectory() {
        let dir = std::env::temp_dir().join(format!("mce_cli_traj_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let summary = |per_access: f64| {
            format!(
                "{{\"per_access_dispatch_ns\": {per_access}, \"block_replay_ns\": 50, \
                 \"block_replay_speedup\": 2.0, \
                 \"block_replay_cancellable_overhead\": 1.0}}"
            )
        };
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        let traj = dir.join("traj.jsonl");
        std::fs::write(&base, summary(100.0)).unwrap();
        std::fs::write(&cur, summary(104.0)).unwrap();
        let record = |current: &std::path::Path| {
            cmd_bench_gate(&s(&[
                "--baseline",
                base.to_str().unwrap(),
                "--current",
                current.to_str().unwrap(),
                "--record",
                "--trajectory",
                traj.to_str().unwrap(),
            ]))
        };
        record(&cur).unwrap();
        std::fs::write(&cur, summary(108.0)).unwrap();
        record(&cur).unwrap();
        let body = std::fs::read_to_string(&traj).unwrap();
        assert_eq!(body.lines().count(), 2, "{body}");
        assert!(body.lines().all(|l| l.starts_with('{')), "{body}");

        // `mce diff --bench` renders the series.
        assert_eq!(
            cmd_diff(&s(&["--bench", traj.to_str().unwrap()])).unwrap(),
            0
        );
        let err = cmd_diff(&s(&["--bench", "/nonexistent/traj.jsonl"])).unwrap_err();
        assert!(err.to_string().contains("cannot read trajectory"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
