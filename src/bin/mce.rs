//! `mce` — command-line front end for the memory + connectivity explorer.
//!
//! ```text
//! mce benchmarks                               list built-in workload models
//! mce template                                 print a workload JSON template
//! mce classify <workload> [--trace N]          APEX pattern extraction
//! mce simulate <workload> [--cache KIB] [--trace N]
//!                                              simulate a cache-only baseline
//! mce explore  <workload> [--scale fast|paper] [--out FILE] [--threads N]
//!              [--eval-cache FILE] [--trace-out FILE] [--progress]
//!                                              full APEX + ConEx exploration
//! ```
//!
//! `<workload>` is either a built-in name (`compress`, `li`, `vocoder`,
//! `mix`) or a path to a workload JSON file (see `mce template`).
//!
//! `--eval-cache FILE` persists the candidate-evaluation cache across runs:
//! loaded before exploring (a missing file is a cold start) and saved back
//! after, so a repeated exploration answers recurring candidates from disk.
//! Results are bit-identical with and without the cache.
//!
//! `--trace-out FILE` writes a Chrome trace-event JSON of the run (open it
//! in `chrome://tracing` or <https://ui.perfetto.dev>); `--progress` prints
//! live phase/progress lines to stderr, with `MCE_LOG=debug` raising the
//! message verbosity. Tracing never changes exploration results.

use memory_conex::apex::classify;
use memory_conex::appmodel::{benchmarks, AccessPattern, DataStructure, Workload, WorkloadBuilder};
use memory_conex::conex::Scenario;
use memory_conex::memlib::{CacheConfig, MemoryArchitecture};
use memory_conex::obs;
use memory_conex::sim::{simulate, Preset, SystemConfig};
use memory_conex::ExplorationSession;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mce benchmarks
  mce template
  mce classify <workload> [--trace N]
  mce simulate <workload> [--cache KIB] [--trace N]
  mce explore  <workload> [--scale fast|paper] [--out FILE] [--threads N]
               [--eval-cache FILE] [--trace-out FILE] [--progress]

<workload> = compress | li | vocoder | adpcm | jpeg | mix | path/to/workload.json

explore options:
  --threads N      worker threads for estimation and simulation
                   (0 = one per core; results are identical for any N)
  --eval-cache FILE persist the candidate-evaluation cache across runs
                   (loaded if present, saved after; results unchanged)
  --trace-out FILE write a Chrome trace-event JSON of the run
                   (open in chrome://tracing or https://ui.perfetto.dev)
  --progress       print live progress lines to stderr (MCE_LOG=debug
                   for more detail)";

type CliError = Box<dyn std::error::Error>;

fn run(args: &[String]) -> Result<(), CliError> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "benchmarks" => cmd_benchmarks(),
        "template" => cmd_template(),
        "classify" => cmd_classify(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "explore" => cmd_explore(&args[1..]),
        other => Err(format!("unknown command `{other}`").into()),
    }
}

/// Parses `--flag value` pairs after the positional workload argument.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load_workload(args: &[String]) -> Result<Workload, CliError> {
    let name = args.first().ok_or("missing <workload> argument")?;
    match name.as_str() {
        "compress" => Ok(benchmarks::compress()),
        "li" => Ok(benchmarks::li()),
        "vocoder" => Ok(benchmarks::vocoder()),
        "adpcm" => Ok(benchmarks::adpcm()),
        "jpeg" => Ok(benchmarks::jpeg()),
        "mix" => Ok(benchmarks::synthetic_mix(1)),
        path => {
            let body = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read workload file `{path}`: {e}"))?;
            let w: Workload = serde_json::from_str(&body)
                .map_err(|e| format!("invalid workload JSON in `{path}`: {e}"))?;
            Ok(w)
        }
    }
}

fn cmd_benchmarks() -> Result<(), CliError> {
    for w in benchmarks::all().into_iter().chain(benchmarks::extended()) {
        println!("{w}");
    }
    println!("{}", benchmarks::synthetic_mix(1));
    Ok(())
}

fn cmd_template() -> Result<(), CliError> {
    // A small but representative workload the user can edit.
    let template = WorkloadBuilder::new("my_app")
        .data_structure(
            DataStructure::new("input", 64 * 1024, 2, AccessPattern::Stream { stride: 2 })
                .with_hotness(5.0)
                .with_write_fraction(0.0),
        )
        .data_structure(
            DataStructure::new("table", 128 * 1024, 8, AccessPattern::SelfIndirect)
                .with_hotness(3.0),
        )
        .data_structure(
            DataStructure::new(
                "state",
                2 * 1024,
                4,
                AccessPattern::LoopNest {
                    working_set: 512,
                    reuse: 8,
                },
            )
            .with_hotness(4.0)
            .with_write_fraction(0.3),
        )
        .seed(1)
        .build();
    println!("{}", serde_json::to_string_pretty(&template)?);
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), CliError> {
    let w = load_workload(args)?;
    let trace: usize = flag_value(args, "--trace").unwrap_or("30000").parse()?;
    println!(
        "pattern extraction for `{}` over {trace} accesses:\n",
        w.name()
    );
    for r in classify(&w, trace) {
        let ds = w.data_structure(r.ds);
        println!(
            "  {:<16} {:<14} share {:>5.1}%  stride-reg {:>4.2}  reuse {:>4.2}",
            ds.name(),
            r.class.to_string(),
            r.access_share * 100.0,
            r.stride_regularity,
            r.reuse_factor
        );
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let w = load_workload(args)?;
    let kib: u64 = flag_value(args, "--cache").unwrap_or("8").parse()?;
    let trace: usize = flag_value(args, "--trace").unwrap_or("30000").parse()?;
    let mem = MemoryArchitecture::cache_only(&w, CacheConfig::kilobytes(kib));
    let sys = SystemConfig::with_shared_bus(&w, mem)?;
    let stats = simulate(&sys, &w, trace);
    println!("system: {sys}");
    println!("cost:   {} gates", sys.gate_cost());
    println!("result: {stats}");
    for (i, link) in stats.links.iter().enumerate() {
        println!(
            "  link {:<6} {:>8} transfers  {:>10} B  utilization {:>5.1}%",
            link.name,
            link.transfers,
            link.bytes,
            stats.link_utilization(i) * 100.0
        );
    }
    for m in &stats.modules {
        println!(
            "  module {:<6} {:>8} accesses  hit ratio {:>5.1}%",
            m.name,
            m.accesses,
            m.hit_ratio() * 100.0
        );
    }
    Ok(())
}

/// The CLI's observability wiring: builds the sink stack requested by
/// `--trace-out` / `--progress`, installs it for the duration of the
/// exploration, and writes the trace file on `finish`.
struct ObsSession {
    chrome: Option<(Arc<obs::ChromeTraceSink>, String)>,
    installed: bool,
}

impl ObsSession {
    fn start(trace_out: Option<&str>, progress: bool) -> Self {
        let chrome =
            trace_out.map(|path| (Arc::new(obs::ChromeTraceSink::new()), path.to_owned()));
        let mut sinks: Vec<Arc<dyn obs::Sink>> = Vec::new();
        if let Some((sink, _)) = &chrome {
            sinks.push(sink.clone());
        }
        if progress {
            sinks.push(Arc::new(obs::ProgressReporter::new(Duration::from_millis(
                200,
            ))));
        }
        let installed = !sinks.is_empty();
        if installed {
            obs::init_level_from_env();
            let sink: Arc<dyn obs::Sink> = if sinks.len() == 1 {
                sinks.pop().expect("one sink")
            } else {
                Arc::new(obs::MultiSink::new(sinks))
            };
            obs::install(sink);
        }
        ObsSession { chrome, installed }
    }

    fn finish(self) -> Result<(), CliError> {
        if self.installed {
            obs::uninstall();
        }
        if let Some((sink, path)) = self.chrome {
            sink.write_to_file(std::path::Path::new(&path))
                .map_err(|e| format!("cannot write trace file `{path}`: {e}"))?;
            eprintln!("wrote trace {path}");
        }
        Ok(())
    }
}

fn cmd_explore(args: &[String]) -> Result<(), CliError> {
    let w = load_workload(args)?;
    let scale: Preset = flag_value(args, "--scale").unwrap_or("fast").parse()?;
    let mut session = ExplorationSession::new(w.clone()).preset(scale);
    if let Some(t) = flag_value(args, "--threads") {
        session = session.threads(
            t.parse()
                .map_err(|e| format!("invalid --threads value `{t}`: {e}"))?,
        );
    }
    let cache_file = flag_value(args, "--eval-cache");
    if let Some(path) = cache_file {
        session = session.eval_cache_file(path);
    }
    let obs_session = ObsSession::start(
        flag_value(args, "--trace-out"),
        args.iter().any(|a| a == "--progress"),
    );
    eprintln!("exploring `{}` at {scale} scale...", w.name());
    let result = session.run()?;
    obs_session.finish()?;
    let conex = &result.conex;
    if let Some(path) = cache_file {
        let s = result.cache_stats;
        eprintln!(
            "eval-cache {path}: {} hits, {} misses, {} inserts",
            s.hits, s.misses, s.inserts
        );
    }
    println!(
        "estimated {} candidates, fully simulated {} ({:.1}s)\n",
        conex.estimated().len(),
        conex.simulated().len(),
        conex.elapsed().as_secs_f64()
    );
    println!("cost/performance pareto:");
    for p in conex.pareto_cost_latency() {
        println!(
            "  {:>8} gates  {:>7.2} cyc  {:>6.2} nJ  {}",
            p.metrics.cost_gates,
            p.metrics.latency_cycles,
            p.metrics.energy_nj,
            p.describe()
        );
    }
    // A quick power-constrained view at the median energy.
    let mut energies: Vec<f64> = conex
        .simulated()
        .iter()
        .map(|p| p.metrics.energy_nj)
        .collect();
    energies.sort_by(f64::total_cmp);
    if let Some(&median) = energies.get(energies.len() / 2) {
        let picks = Scenario::PowerConstrained {
            max_energy_nj: median,
        }
        .select(conex.simulated());
        println!(
            "\npower-constrained (≤ median {median:.2} nJ): {} admissible pareto designs",
            picks.len()
        );
    }
    if let Some(path) = flag_value(args, "--out") {
        std::fs::write(path, serde_json::to_string_pretty(&conex)?)?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let args = s(&["vocoder", "--trace", "123", "--cache", "4"]);
        assert_eq!(flag_value(&args, "--trace"), Some("123"));
        assert_eq!(flag_value(&args, "--cache"), Some("4"));
        assert_eq!(flag_value(&args, "--missing"), None);
    }

    #[test]
    fn builtin_workloads_load() {
        for name in ["compress", "li", "vocoder", "adpcm", "jpeg", "mix"] {
            assert!(load_workload(&s(&[name])).is_ok(), "{name}");
        }
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = load_workload(&s(&["/nonexistent/w.json"])).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn template_round_trips_through_serde() {
        let template = WorkloadBuilder::new("t")
            .data_structure(DataStructure::new("d", 1024, 4, AccessPattern::Random))
            .build();
        let json = serde_json::to_string(&template).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(template, back);
    }

    #[test]
    fn explore_rejects_bad_threads() {
        let err = cmd_explore(&s(&["vocoder", "--threads", "abc"])).unwrap_err();
        assert!(err.to_string().contains("--threads"), "{err}");
    }

    #[test]
    fn explore_rejects_bad_scale() {
        let err = cmd_explore(&s(&["vocoder", "--scale", "huge"])).unwrap_err();
        assert!(err.to_string().contains("unknown preset"), "{err}");
    }

    #[test]
    fn classify_and_simulate_run() {
        assert!(cmd_classify(&s(&["vocoder", "--trace", "2000"])).is_ok());
        assert!(cmd_simulate(&s(&["vocoder", "--cache", "2", "--trace", "2000"])).is_ok());
    }
}
