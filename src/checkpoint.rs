//! Crash-safe run checkpoints.
//!
//! A [`Checkpoint`] is everything a killed exploration needs to resume
//! bit-identically: how many Phase-I architectures completed, the
//! frontier-evolution samples taken so far, the observability counters
//! and gauges at that point, and the evaluation cache — entries in exact
//! FIFO order plus its lifetime stats, so the resumed cache evicts and
//! counts exactly like the original would have.
//!
//! Notably *absent* are the estimated design points themselves: they are
//! a deterministic function of the workload and configuration, so resume
//! replays the completed architectures through a scratch copy of the
//! restored cache ([`ConexExplorer::phase1_partial`]) — every evaluation
//! is a cache hit, making replay cheap — and the recomputed frontier
//! samples are cross-checked against the checkpointed ones. This keeps
//! the file format to a handful of flat, checksummed fields instead of a
//! deep serialization of the design space.
//!
//! ## File format
//!
//! Line 1 is a header carrying a digest of everything after it:
//!
//! ```json
//! {"mce_checkpoint":1,"digest":"<32 hex>"}
//! ```
//!
//! The rest is the body document. All `u64` values ride as decimal
//! strings (JSON numbers are f64 — exactness over convenience) and f64
//! values as hex bit patterns, the same discipline as the eval-cache
//! spill; cache entries reuse the spill's five-field checksummed form.
//! The digest is a two-lane FNV-1a over the body bytes, so truncation,
//! bit flips or hand edits anywhere in the file are detected before any
//! field is trusted. Writes go through [`mce_error::atomic_write`]: a
//! crash *during* checkpointing leaves the previous checkpoint intact.
//!
//! Compatibility is enforced, not assumed: the body records digests of
//! the workload and of the full configuration (with `threads` normalized
//! out — thread count never affects results), and
//! [`Checkpoint::ensure_matches`] rejects a checkpoint from a different
//! run with [`MceError::Checkpoint`].
//!
//! [`ConexExplorer::phase1_partial`]: mce_conex::ConexExplorer::phase1_partial

use mce_apex::ApexConfig;
use mce_conex::design_point::{CanonKey, Metrics};
use mce_conex::eval_cache::{format_spill_entry, parse_spill_entry};
use mce_conex::explore::Phase1State;
use mce_conex::{CacheStats, ConexConfig, EvalCache, FrontierSnapshot};
use mce_connlib::ConnectivityLibrary;
use mce_error::MceError;
use mce_obs::json::{self, Value};
use std::path::Path;

/// Version of the checkpoint schema; bumped on any layout change. A
/// version mismatch is always a hard error — resuming across schema
/// changes is not worth silently-wrong results.
pub const CHECKPOINT_SCHEMA: u64 = 1;

/// A point-in-time snapshot of a running exploration — see the module
/// docs for what is (and deliberately is not) captured.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Digest of the workload the run explored.
    pub workload_digest: String,
    /// Digest of the session configuration (threads normalized out).
    pub config_digest: String,
    /// Completed Phase-I memory architectures.
    pub archs_done: usize,
    /// Observability counters at capture time (empty when tracing was
    /// disabled).
    pub counters: Vec<(String, u64)>,
    /// Observability gauges at capture time.
    pub gauges: Vec<(String, u64)>,
    /// Evaluation-cache lifetime stats at capture time.
    pub cache_stats: CacheStats,
    /// Frontier-evolution samples accumulated so far; resume verifies
    /// its replay reproduces exactly these.
    pub frontier: Vec<FrontierSnapshot>,
    /// Evaluation-cache entries in FIFO (insertion) order, so the
    /// restored cache's future evictions match the original's.
    pub entries: Vec<(CanonKey, Metrics)>,
}

impl Checkpoint {
    /// Snapshots the current run: Phase-I progress from `state`, entries
    /// and stats from `cache`, counters and gauges from the global
    /// recorder.
    pub fn capture(
        workload_digest: String,
        config_digest: String,
        state: &Phase1State,
        cache: &EvalCache,
    ) -> Self {
        Checkpoint {
            workload_digest,
            config_digest,
            archs_done: state.archs_done,
            counters: mce_obs::counters_snapshot()
                .into_iter()
                .map(|(n, v)| (n.to_owned(), v))
                .collect(),
            gauges: mce_obs::gauges_snapshot()
                .into_iter()
                .map(|(n, v)| (n.to_owned(), v))
                .collect(),
            cache_stats: cache.stats(),
            frontier: state.frontier_evolution.clone(),
            entries: cache.entries_fifo(),
        }
    }

    /// Serializes to the on-disk form: digest header line plus body.
    /// Byte-stable — identical checkpoints serialize identically.
    pub fn to_json(&self) -> String {
        let body = self.body_json();
        format!(
            "{{\"mce_checkpoint\":{CHECKPOINT_SCHEMA},\"digest\":\"{}\"}}\n{body}",
            fnv128(body.as_bytes())
        )
    }

    fn body_json(&self) -> String {
        let named = |pairs: &[(String, u64)]| {
            let items: Vec<String> = pairs
                .iter()
                .map(|(n, v)| format!("[{:?},\"{v}\"]", n))
                .collect();
            items.join(",")
        };
        let frontier: Vec<String> = self
            .frontier
            .iter()
            .map(|s| {
                format!(
                    "[{},{},{},\"{:016x}\"]",
                    s.archs_explored,
                    s.estimated,
                    s.frontier_size,
                    s.hypervolume.to_bits()
                )
            })
            .collect();
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|(k, m)| {
                let [key, cost, lat, energy, check] = format_spill_entry(k, m);
                format!("[\"{key}\",\"{cost}\",\"{lat}\",\"{energy}\",\"{check}\"]")
            })
            .collect();
        let st = &self.cache_stats;
        format!(
            concat!(
                "{{\"schema\":{},\"workload_digest\":\"{}\",\"config_digest\":\"{}\",",
                "\"archs_done\":{},\"counters\":[{}],\"gauges\":[{}],",
                "\"cache_stats\":[\"{}\",\"{}\",\"{}\",\"{}\"],",
                "\"frontier\":[{}],\"entries\":[{}]}}"
            ),
            CHECKPOINT_SCHEMA,
            self.workload_digest,
            self.config_digest,
            self.archs_done,
            named(&self.counters),
            named(&self.gauges),
            st.hits,
            st.misses,
            st.inserts,
            st.evictions,
            frontier.join(","),
            entries.join(",")
        )
    }

    /// Parses the on-disk form, verifying the header digest before
    /// trusting any field.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Checkpoint`] on a missing or malformed
    /// header, digest mismatch (truncation, bit flips), unsupported
    /// schema, or any malformed body field.
    pub fn from_json(text: &str) -> Result<Self, MceError> {
        let bad = |why: &str| MceError::checkpoint(format!("{why} — discard the file and rerun"));
        let (header, body) = text
            .split_once('\n')
            .ok_or_else(|| bad("missing header line"))?;
        let header = json::parse(header).map_err(|_| bad("unreadable header"))?;
        if header.get("mce_checkpoint").and_then(Value::as_u64) != Some(CHECKPOINT_SCHEMA) {
            return Err(bad("not a checkpoint of a supported schema"));
        }
        let digest = header
            .get("digest")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("header carries no digest"))?;
        if digest != fnv128(body.as_bytes()) {
            return Err(bad("body does not match its digest (corrupt or truncated)"));
        }
        let doc = json::parse(body).map_err(|_| bad("unreadable body"))?;
        if doc.get("schema").and_then(Value::as_u64) != Some(CHECKPOINT_SCHEMA) {
            return Err(bad("body schema mismatch"));
        }
        let hex_str = |v: &Value, what: &str| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| bad(&format!("bad {what}")))
        };
        let u64_str = |v: &Value, what: &str| {
            v.as_str()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| bad(&format!("bad {what}")))
        };
        let field = |what: &str| doc.get(what).ok_or_else(|| bad(&format!("missing {what}")));
        let named = |what: &str| -> Result<Vec<(String, u64)>, MceError> {
            field(what)?
                .as_array()
                .ok_or_else(|| bad(&format!("bad {what}")))?
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| bad(&format!("bad {what} pair")))?;
                    Ok((hex_str(&pair[0], what)?, u64_str(&pair[1], what)?))
                })
                .collect()
        };
        let stats = field("cache_stats")?
            .as_array()
            .filter(|s| s.len() == 4)
            .ok_or_else(|| bad("bad cache_stats"))?;
        let frontier = field("frontier")?
            .as_array()
            .ok_or_else(|| bad("bad frontier"))?
            .iter()
            .map(|s| {
                let s = s
                    .as_array()
                    .filter(|s| s.len() == 4)
                    .ok_or_else(|| bad("bad frontier sample"))?;
                let int = |v: &Value| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| bad("bad frontier sample"))
                };
                let hv = s[3]
                    .as_str()
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .map(f64::from_bits)
                    .filter(|h| h.is_finite())
                    .ok_or_else(|| bad("bad frontier hypervolume"))?;
                Ok(FrontierSnapshot {
                    archs_explored: int(&s[0])?,
                    estimated: int(&s[1])?,
                    frontier_size: int(&s[2])?,
                    hypervolume: hv,
                })
            })
            .collect::<Result<Vec<_>, MceError>>()?;
        let entries = field("entries")?
            .as_array()
            .ok_or_else(|| bad("bad entries"))?
            .iter()
            .map(|e| parse_spill_entry(e).map_err(|why| bad(&format!("bad cache entry: {why}"))))
            .collect::<Result<Vec<_>, MceError>>()?;
        Ok(Checkpoint {
            workload_digest: hex_str(field("workload_digest")?, "workload_digest")?,
            config_digest: hex_str(field("config_digest")?, "config_digest")?,
            archs_done: field("archs_done")?
                .as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| bad("bad archs_done"))?,
            counters: named("counters")?,
            gauges: named("gauges")?,
            cache_stats: CacheStats {
                hits: u64_str(&stats[0], "cache_stats")?,
                misses: u64_str(&stats[1], "cache_stats")?,
                inserts: u64_str(&stats[2], "cache_stats")?,
                evictions: u64_str(&stats[3], "cache_stats")?,
            },
            frontier,
            entries,
        })
    }

    /// Writes the checkpoint atomically: a crash mid-save leaves any
    /// previous checkpoint at `path` intact, never a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Io`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), MceError> {
        mce_error::atomic_write(path, self.to_json().as_bytes())
    }

    /// Reads and verifies a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Io`] if the file cannot be read, or
    /// [`MceError::Checkpoint`] if it fails verification
    /// ([`Checkpoint::from_json`]).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, MceError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| MceError::io(format!("reading checkpoint `{}`", path.display()), e))?;
        Self::from_json(&text)
    }

    /// Rejects resuming under a different workload or configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MceError::Checkpoint`] naming the mismatched digest.
    pub fn ensure_matches(
        &self,
        workload_digest: &str,
        config_digest: &str,
    ) -> Result<(), MceError> {
        if self.workload_digest != workload_digest {
            return Err(MceError::checkpoint(format!(
                "workload digest mismatch (checkpoint {}, run {workload_digest}) — \
                 the checkpoint belongs to a different workload",
                self.workload_digest
            )));
        }
        if self.config_digest != config_digest {
            return Err(MceError::checkpoint(format!(
                "config digest mismatch (checkpoint {}, run {config_digest}) — \
                 the run was reconfigured since the checkpoint was taken",
                self.config_digest
            )));
        }
        Ok(())
    }
}

/// Digest of the session configuration a checkpoint is only valid for:
/// both stage configs, the connectivity library and the cache capacity.
/// `threads` is normalized to zero first — results are identical for any
/// thread count, so a resume may legitimately use a different one.
pub fn config_digest(
    apex: &ApexConfig,
    conex: &ConexConfig,
    library: &ConnectivityLibrary,
    cache_capacity: usize,
) -> String {
    let mut conex = conex.clone();
    conex.threads = 0;
    // Debug formatting covers every field of every config type and is
    // deterministic; a digest over it changes whenever any knob does.
    fnv128(format!("{apex:?}|{conex:?}|{library:?}|{cache_capacity}").as_bytes())
}

/// Two-lane FNV-1a over `bytes`, rendered as 32 hex chars. Two
/// independently-seeded 64-bit lanes make coincidental collisions after
/// file corruption vanishingly unlikely while keeping the hash
/// dependency-free. Also used by the run archive to content-address
/// reports by their deterministic prefix.
pub fn fnv128(bytes: &[u8]) -> String {
    const OFFSET_1: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME_1: u64 = 0x0000_0100_0000_01b3;
    const OFFSET_2: u64 = 0x6c62_272e_07bb_0142;
    const PRIME_2: u64 = 0x9e37_79b9_7f4a_7c15;
    let (mut a, mut b) = (OFFSET_1, OFFSET_2);
    for &byte in bytes {
        a = (a ^ u64::from(byte)).wrapping_mul(PRIME_1);
        b = (b ^ u64::from(byte)).wrapping_mul(PRIME_2);
    }
    format!("{a:016x}{b:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            workload_digest: "00112233445566778899aabbccddeeff".to_owned(),
            config_digest: "ffeeddccbbaa99887766554433221100".to_owned(),
            archs_done: 2,
            counters: vec![
                ("conex.estimate_jobs".to_owned(), 123),
                ("eval_cache.hits".to_owned(), u64::MAX),
            ],
            gauges: vec![("conex.frontier_size_max".to_owned(), 7)],
            cache_stats: CacheStats {
                hits: 10,
                misses: 20,
                inserts: 20,
                evictions: 3,
            },
            frontier: vec![FrontierSnapshot {
                archs_explored: 1,
                estimated: 40,
                frontier_size: 5,
                hypervolume: 0.375,
            }],
            entries: vec![
                (
                    CanonKey { hi: 1, lo: 2 },
                    Metrics {
                        cost_gates: 1000,
                        latency_cycles: 1.5,
                        energy_nj: 0.25,
                    },
                ),
                (
                    CanonKey { hi: 3, lo: 4 },
                    Metrics {
                        cost_gates: 2000,
                        latency_cycles: 2.5,
                        energy_nj: 0.5,
                    },
                ),
            ],
        }
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let ck = sample();
        let text = ck.to_json();
        let back = Checkpoint::from_json(&text).unwrap();
        assert_eq!(back, ck);
        // Byte-stable: re-serializing reproduces the exact bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn u64_values_survive_beyond_f64_precision() {
        let back = Checkpoint::from_json(&sample().to_json()).unwrap();
        assert_eq!(back.counters[1].1, u64::MAX, "not squeezed through f64");
    }

    #[test]
    fn any_corruption_is_detected() {
        let text = sample().to_json();
        // Truncation at every possible length.
        for cut in 0..text.len() {
            assert!(
                Checkpoint::from_json(&text[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // A flipped character anywhere in the body fails the digest.
        let body_start = text.find('\n').unwrap() + 1;
        for i in [body_start, text.len() / 2, text.len() - 2] {
            let mut bytes = text.clone().into_bytes();
            bytes[i] = if bytes[i] == b'x' { b'y' } else { b'x' };
            let Ok(mutated) = String::from_utf8(bytes) else {
                continue;
            };
            let err = Checkpoint::from_json(&mutated).unwrap_err();
            assert!(matches!(err, MceError::Checkpoint { .. }), "{err}");
        }
    }

    #[test]
    fn mismatched_digests_are_rejected_with_context() {
        let ck = sample();
        ck.ensure_matches(&ck.workload_digest, &ck.config_digest)
            .unwrap();
        let err = ck.ensure_matches("beef", &ck.config_digest).unwrap_err();
        assert!(err.to_string().contains("different workload"), "{err}");
        let err = ck.ensure_matches(&ck.workload_digest, "beef").unwrap_err();
        assert!(err.to_string().contains("reconfigured"), "{err}");
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let path = std::env::temp_dir().join(format!("mce_ckpt_{}.json", std::process::id()));
        let ck = sample();
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, ck);
    }

    #[test]
    fn config_digest_tracks_knobs_but_not_threads() {
        use mce_sim::Preset;
        let apex = ApexConfig::preset(Preset::Fast);
        let conex = ConexConfig::preset(Preset::Fast);
        let lib = ConnectivityLibrary::amba();
        let base = config_digest(&apex, &conex, &lib, 100);
        assert_eq!(base, config_digest(&apex, &conex, &lib, 100));
        assert_ne!(base, config_digest(&apex, &conex, &lib, 200));
        let mut threaded = conex.clone();
        threaded.threads = 8;
        assert_eq!(base, config_digest(&apex, &threaded, &lib, 100));
        let mut longer = conex.clone();
        longer.trace_len += 1;
        assert_ne!(base, config_digest(&apex, &longer, &lib, 100));
    }
}
