//! Run reports: the per-run summary artifact of an exploration.
//!
//! A [`RunReport`] is assembled at the end of every
//! [`ExplorationSession`](crate::ExplorationSession) run. It captures what
//! the run *was* (config + 128-bit workload digest), what it *did*
//! (candidate-funnel counters, eval-cache hit/miss/eviction rates,
//! pareto-front sizes, frontier-evolution snapshots) and how it *ran*
//! (per-phase wall time and latency histograms with p50/p90/p99), and
//! serializes to byte-stable JSON: every nondeterministic value lives in
//! the single `"wall_clock"` section, which is always the **last**
//! top-level key, so two identical runs produce byte-identical reports up
//! to that marker.
//!
//! Bounded runs add a `"status"`/`"stop_reason"` pair to the
//! deterministic prefix (logical budgets trip at the same point on every
//! machine), while the timing-dependent budget artifacts — `budget.*`
//! counters and per-candidate degradation annotations — are quarantined
//! inside `"wall_clock"`.
//!
//! The schema carries a version number ([`REPORT_SCHEMA`], currently 1)
//! as its first key; `mce report` refuses inputs with a different
//! version rather than misrendering them.
//!
//! The same module renders reports into self-contained markdown/HTML
//! summaries (tables plus an inline SVG frontier plot — no external
//! assets) for `mce report`, and implements the tolerance comparison
//! behind `mce bench-gate`.

use mce_apex::ApexConfig;
use mce_appmodel::Workload;
use mce_conex::design_point::workload_digest;
use mce_conex::{
    ArchProvenance, CacheStats, ConexConfig, ConexResult, DegradedEval, FrontierSnapshot,
};
use mce_error::MceError;
use mce_obs as obs;
use mce_obs::json::Value;
use mce_obs::{escape_json, HistogramSummary};

/// Version of the report JSON layout. Bump when a field changes meaning
/// or moves; `mce report` and the CI schema check pin this.
pub const REPORT_SCHEMA: u64 = 1;

/// Version of the report's embedded `provenance` section (`mce explore
/// --explain`). Versioned separately from [`REPORT_SCHEMA`] because the
/// section is optional: a report without it is still schema 1, and a
/// future provenance layout change must not invalidate archived reports
/// that never carried the section.
pub const PROVENANCE_SCHEMA: u64 = 1;

/// The configuration slice of a report: the knobs that determine the
/// run's deterministic sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportConfig {
    /// APEX stage trace length.
    pub apex_trace_len: usize,
    /// ConEx stage trace length.
    pub conex_trace_len: usize,
    /// Phase-I pruning strategy (display form).
    pub strategy: String,
    /// Cap on locally selected points per memory architecture.
    pub local_keep: usize,
    /// The paper's max-cost constraint on logical connections.
    pub max_logical_connections: usize,
    /// Cap on enumerated allocations per clustering level.
    pub max_allocations_per_level: usize,
    /// Frontier-evolution sampling period (0 = disabled).
    pub frontier_sample_every: usize,
    /// Evaluation-cache capacity bound.
    pub cache_capacity: usize,
}

/// Eval-cache effectiveness over the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSummary {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored.
    pub inserts: u64,
    /// Entries evicted by the FIFO capacity bound.
    pub evictions: u64,
    /// `hits / (hits + misses)`, 0 when no lookups happened.
    pub hit_rate: f64,
}

impl CacheSummary {
    /// Summarizes lifetime cache statistics.
    pub fn from_stats(stats: &CacheStats) -> Self {
        let lookups = stats.hits + stats.misses;
        CacheSummary {
            hits: stats.hits,
            misses: stats.misses,
            inserts: stats.inserts,
            evictions: stats.evictions,
            hit_rate: if lookups == 0 {
                0.0
            } else {
                stats.hits as f64 / lookups as f64
            },
        }
    }
}

/// Pareto-front sizes of the fully simulated set, plus the cost/latency
/// front itself (the report's plottable curve).
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoSummary {
    /// Cost/latency front size.
    pub cost_latency: usize,
    /// Latency/energy front size.
    pub latency_energy: usize,
    /// Cost/energy front size.
    pub cost_energy: usize,
    /// Full 3-D front size.
    pub full_3d: usize,
    /// `(cost_gates, latency_cycles)` of the cost/latency front, cheapest
    /// first.
    pub front_cost_latency: Vec<(u64, f64)>,
}

impl ParetoSummary {
    /// Summarizes a ConEx result's simulated fronts.
    pub fn from_result(conex: &ConexResult) -> Self {
        ParetoSummary {
            cost_latency: conex.pareto_cost_latency().len(),
            latency_energy: conex.pareto_latency_energy().len(),
            cost_energy: conex.pareto_cost_energy().len(),
            full_3d: conex.pareto_3d().len(),
            front_cost_latency: conex
                .pareto_cost_latency()
                .iter()
                .map(|p| (p.metrics.cost_gates, p.metrics.latency_cycles))
                .collect(),
        }
    }
}

/// The one nondeterministic section: everything wall-clock-derived.
#[derive(Debug, Clone, PartialEq)]
pub struct WallClock {
    /// End-to-end session wall time, seconds.
    pub elapsed_s: f64,
    /// Whether this run was resumed from a checkpoint. Lives in the
    /// wall-clock section because it describes how the run executed,
    /// not what it computed: a resumed run's deterministic sections are
    /// byte-identical to an uninterrupted run's.
    pub resumed: bool,
    /// Worker threads (0 = one per core). Results are thread-count
    /// independent by contract, so like `resumed` this describes how the
    /// run executed — keeping it here lets `--threads 1` and
    /// `--threads 8` reports byte-compare up to `wall_clock`.
    pub threads: usize,
    /// Peak resident set size of the exploring process, in bytes.
    /// Best-effort: read from `/proc/self/status` (`VmHWM`) on Linux,
    /// `None` where no such source exists. Machine-dependent, so it
    /// lives in the wall-clock section.
    pub peak_rss_bytes: Option<u64>,
    /// Candidates answered with degraded values because their simulation
    /// hit the `--candidate-timeout` watchdog. Wall-clock-driven (which
    /// candidate times out depends on machine speed), so it lives here.
    pub degraded: Vec<DegradedEval>,
    /// `budget.*` recorder counters (timeouts, degraded evals, cancelled
    /// runs), split out of the deterministic `counters` section because
    /// watchdog and deadline events are timing-dependent.
    pub budget_counters: Vec<(String, u64)>,
    /// The logical time-series channel: per-architecture registry
    /// snapshots (`(archs_done, value)` points) from
    /// [`mce_obs::timeseries`]. The *contents* are deterministic — they
    /// byte-compare across thread counts and cache state — but the
    /// section lives here anyway: its sibling wall channel cannot leave
    /// `wall_clock`, and splitting the two channels across the stable
    /// boundary would invite exactly the confusion the boundary exists
    /// to prevent. Nothing deterministic may consume it from here.
    pub timeseries_logical: Vec<(String, Vec<(u64, u64)>)>,
    /// The wall-clock time-series channel: background-sampler snapshots
    /// (`(t_us, value)` points, plus derived `<hist>.p90` series). How
    /// many samples landed and where is machine-speed-dependent.
    pub timeseries_wall: Vec<(String, Vec<(u64, u64)>)>,
    /// Every histogram the recorder collected (phase durations from
    /// spans, per-item simulate/estimate latency, cache-probe latency,
    /// per-worker occupancy), in name order.
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// The per-run summary artifact. See the [module docs](self) for the
/// layout contract.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Workload explored.
    pub workload_name: String,
    /// 128-bit canonical workload digest, 32 hex digits.
    pub workload_digest: String,
    /// `"complete"` when the exploration ran to the end, `"truncated"`
    /// when a bound stopped it at a safe point. Deterministic for logical
    /// budgets (`--max-evals`, `--max-archs`).
    pub status: String,
    /// Which bound tripped (`"max-evals"`, `"max-archs"`, `"deadline"`,
    /// `"interrupt"`); `None` for a complete run.
    pub stop_reason: Option<String>,
    /// The knobs that shaped the run.
    pub config: ReportConfig,
    /// Recorder counters at end of run (candidate funnel, replay totals),
    /// in name order. Empty when tracing was disabled.
    pub counters: Vec<(String, u64)>,
    /// Recorder gauges (high-water marks), in name order.
    pub gauges: Vec<(String, u64)>,
    /// Eval-cache effectiveness.
    pub eval_cache: CacheSummary,
    /// Pareto-front sizes and the cost/latency curve.
    pub pareto: ParetoSummary,
    /// Phase-I frontier-evolution samples.
    pub frontier_evolution: Vec<FrontierSnapshot>,
    /// Frontier provenance per Phase-I architecture: why each surviving
    /// design point made the local frontier and which kept point
    /// dominated each pruned one. Empty unless the run was explained
    /// (`mce explore --explain`); serialized as the schema-versioned
    /// `provenance` section ([`PROVENANCE_SCHEMA`]) and *only* when
    /// non-empty, so explain on/off changes nothing outside it.
    pub provenance: Vec<ArchProvenance>,
    /// The nondeterministic tail section.
    pub wall_clock: WallClock,
}

impl RunReport {
    /// Assembles a report from a finished run.
    ///
    /// Counters, gauges and histograms are read from the process-global
    /// `mce-obs` recorder, so they cover exactly what was recorded since
    /// the last [`mce_obs::install`] (which resets all three registries).
    /// With tracing disabled those sections are empty — the registries are
    /// not even read, so a report collected after `uninstall` cannot pick
    /// up stale data from an earlier traced run. Everything else is
    /// derived from the results and is always present.
    #[allow(clippy::too_many_arguments)]
    pub fn collect(
        workload: &Workload,
        apex: &ApexConfig,
        conex_cfg: &ConexConfig,
        cache_capacity: usize,
        cache_stats: &CacheStats,
        conex: &ConexResult,
        elapsed_s: f64,
        resumed: bool,
    ) -> Self {
        let (budget_counters, counters) = if obs::tracing_enabled() {
            obs::counters_snapshot()
                .into_iter()
                .map(|(name, v)| (name.to_owned(), v))
                .partition(|(name, _)| name.starts_with("budget."))
        } else {
            (Vec::new(), Vec::new())
        };
        RunReport {
            workload_name: workload.name().to_owned(),
            workload_digest: workload_digest(workload).to_hex(),
            status: if conex.is_truncated() {
                "truncated".to_owned()
            } else {
                "complete".to_owned()
            },
            stop_reason: conex.stop_reason().map(str::to_owned),
            config: ReportConfig {
                apex_trace_len: apex.trace_len,
                conex_trace_len: conex_cfg.trace_len,
                strategy: conex_cfg.strategy.to_string(),
                local_keep: conex_cfg.local_keep,
                max_logical_connections: conex_cfg.max_logical_connections,
                max_allocations_per_level: conex_cfg.max_allocations_per_level,
                frontier_sample_every: conex_cfg.frontier_sample_every,
                cache_capacity,
            },
            counters,
            gauges: if obs::tracing_enabled() {
                obs::gauges_snapshot()
                    .into_iter()
                    .map(|(name, v)| (name.to_owned(), v))
                    .collect()
            } else {
                Vec::new()
            },
            eval_cache: CacheSummary::from_stats(cache_stats),
            pareto: ParetoSummary::from_result(conex),
            frontier_evolution: conex.frontier_evolution().to_vec(),
            provenance: conex.provenance().to_vec(),
            wall_clock: WallClock {
                elapsed_s,
                resumed,
                threads: conex_cfg.threads,
                peak_rss_bytes: peak_rss_bytes(),
                degraded: conex.degraded().to_vec(),
                budget_counters,
                timeseries_logical: if obs::tracing_enabled() {
                    owned_series(obs::logical_series())
                } else {
                    Vec::new()
                },
                timeseries_wall: if obs::tracing_enabled() {
                    owned_series(obs::wall_series())
                } else {
                    Vec::new()
                },
                histograms: if obs::tracing_enabled() {
                    obs::histograms_snapshot()
                        .into_iter()
                        .map(|(name, h)| (name.to_owned(), h.summary()))
                        .collect()
                } else {
                    Vec::new()
                },
            },
        }
    }

    /// Serializes the report as pretty-printed JSON with a fixed key
    /// order. Everything before the `"wall_clock"` key is a pure function
    /// of the run's configuration and results; the wall-clock section is
    /// last so consumers can byte-compare reports by truncating there.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"schema\": {REPORT_SCHEMA},\n"));
        s.push_str(&format!(
            "  \"workload\": \"{}\",\n",
            escape_json(&self.workload_name)
        ));
        s.push_str(&format!(
            "  \"workload_digest\": \"{}\",\n",
            self.workload_digest
        ));
        s.push_str(&format!(
            "  \"status\": \"{}\",\n",
            escape_json(&self.status)
        ));
        match &self.stop_reason {
            Some(r) => s.push_str(&format!("  \"stop_reason\": \"{}\",\n", escape_json(r))),
            None => s.push_str("  \"stop_reason\": null,\n"),
        }
        let c = &self.config;
        s.push_str("  \"config\": {\n");
        s.push_str(&format!("    \"apex_trace_len\": {},\n", c.apex_trace_len));
        s.push_str(&format!(
            "    \"conex_trace_len\": {},\n",
            c.conex_trace_len
        ));
        s.push_str(&format!(
            "    \"strategy\": \"{}\",\n",
            escape_json(&c.strategy)
        ));
        s.push_str(&format!("    \"local_keep\": {},\n", c.local_keep));
        s.push_str(&format!(
            "    \"max_logical_connections\": {},\n",
            c.max_logical_connections
        ));
        s.push_str(&format!(
            "    \"max_allocations_per_level\": {},\n",
            c.max_allocations_per_level
        ));
        s.push_str(&format!(
            "    \"frontier_sample_every\": {},\n",
            c.frontier_sample_every
        ));
        s.push_str(&format!("    \"cache_capacity\": {}\n", c.cache_capacity));
        s.push_str("  },\n");
        s.push_str(&named_u64_object("counters", &self.counters));
        s.push_str(&named_u64_object("gauges", &self.gauges));
        let e = &self.eval_cache;
        s.push_str(&format!(
            "  \"eval_cache\": {{\"hits\": {}, \"misses\": {}, \"inserts\": {}, \
             \"evictions\": {}, \"hit_rate\": {}}},\n",
            e.hits,
            e.misses,
            e.inserts,
            e.evictions,
            fmt_f64(e.hit_rate)
        ));
        let p = &self.pareto;
        s.push_str("  \"pareto\": {\n");
        s.push_str(&format!("    \"cost_latency\": {},\n", p.cost_latency));
        s.push_str(&format!("    \"latency_energy\": {},\n", p.latency_energy));
        s.push_str(&format!("    \"cost_energy\": {},\n", p.cost_energy));
        s.push_str(&format!("    \"full_3d\": {},\n", p.full_3d));
        let pts: Vec<String> = p
            .front_cost_latency
            .iter()
            .map(|&(cost, lat)| format!("[{cost}, {}]", fmt_f64(lat)))
            .collect();
        s.push_str(&format!(
            "    \"front_cost_latency\": [{}]\n",
            pts.join(", ")
        ));
        s.push_str("  },\n");
        let evo: Vec<String> = self
            .frontier_evolution
            .iter()
            .map(|f| {
                format!(
                    "    {{\"archs_explored\": {}, \"estimated\": {}, \
                     \"frontier_size\": {}, \"hypervolume\": {}}}",
                    f.archs_explored,
                    f.estimated,
                    f.frontier_size,
                    fmt_f64(f.hypervolume)
                )
            })
            .collect();
        if evo.is_empty() {
            s.push_str("  \"frontier_evolution\": [],\n");
        } else {
            s.push_str(&format!(
                "  \"frontier_evolution\": [\n{}\n  ],\n",
                evo.join(",\n")
            ));
        }
        // The optional provenance section: emitted only when the run was
        // explained, so explain on/off changes nothing outside it.
        if !self.provenance.is_empty() {
            s.push_str(&provenance_section(&self.provenance));
        }
        // The nondeterministic tail: always the last top-level key.
        s.push_str("  \"wall_clock\": {\n");
        s.push_str(&format!(
            "    \"elapsed_s\": {},\n",
            fmt_f64(self.wall_clock.elapsed_s)
        ));
        s.push_str(&format!("    \"resumed\": {},\n", self.wall_clock.resumed));
        s.push_str(&format!("    \"threads\": {},\n", self.wall_clock.threads));
        s.push_str(&format!(
            "    \"peak_rss_bytes\": {},\n",
            self.wall_clock
                .peak_rss_bytes
                .map_or_else(|| "null".to_owned(), |v| v.to_string())
        ));
        let degraded: Vec<String> = self
            .wall_clock
            .degraded
            .iter()
            .map(|d| {
                format!(
                    "      {{\"phase\": \"{}\", \"arch\": {}, \"index\": {}, \
                     \"reason\": \"{}\"}}",
                    escape_json(&d.phase),
                    d.arch.map_or_else(|| "null".to_owned(), |a| a.to_string()),
                    d.index,
                    escape_json(&d.reason)
                )
            })
            .collect();
        if degraded.is_empty() {
            s.push_str("    \"degraded\": [],\n");
        } else {
            s.push_str(&format!(
                "    \"degraded\": [\n{}\n    ],\n",
                degraded.join(",\n")
            ));
        }
        if self.wall_clock.budget_counters.is_empty() {
            s.push_str("    \"budget\": {},\n");
        } else {
            let lines: Vec<String> = self
                .wall_clock
                .budget_counters
                .iter()
                .map(|(name, v)| format!("      \"{}\": {v}", escape_json(name)))
                .collect();
            s.push_str(&format!(
                "    \"budget\": {{\n{}\n    }},\n",
                lines.join(",\n")
            ));
        }
        s.push_str("    \"timeseries\": {\n");
        s.push_str(&series_channel(
            "logical",
            &self.wall_clock.timeseries_logical,
        ));
        s.push_str(",\n");
        s.push_str(&series_channel("wall", &self.wall_clock.timeseries_wall));
        s.push_str("\n    },\n");
        let hists: Vec<String> = self
            .wall_clock
            .histograms
            .iter()
            .map(|(name, h)| {
                format!(
                    "      {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"min\": {}, \
                     \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                    escape_json(name),
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.p50,
                    h.p90,
                    h.p99
                )
            })
            .collect();
        if hists.is_empty() {
            s.push_str("    \"histograms\": []\n");
        } else {
            s.push_str(&format!(
                "    \"histograms\": [\n{}\n    ]\n",
                hists.join(",\n")
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// The deterministic prefix of [`RunReport::to_json`]: everything up
    /// to (excluding) the `"wall_clock"` key. Two identical runs produce
    /// equal stable prefixes byte for byte.
    pub fn stable_json_prefix(json: &str) -> &str {
        match json.find("\"wall_clock\"") {
            Some(i) => &json[..i],
            None => json,
        }
    }

    /// Removes the optional `provenance` section from a serialized
    /// report, leaving every other byte untouched. An explained run's
    /// report put through this equals the unexplained run's report —
    /// the provenance determinism contract, and what `mce diff` compares
    /// when exactly one side was explained.
    pub fn without_provenance(json: &str) -> String {
        match (json.find("\"provenance\""), json.find("\"wall_clock\"")) {
            (Some(p), Some(w)) if p < w => {
                let mut out = String::with_capacity(json.len());
                out.push_str(&json[..p]);
                out.push_str(&json[w..]);
                out
            }
            _ => json.to_owned(),
        }
    }
}

/// Checks a parsed report document's `schema` field against
/// [`REPORT_SCHEMA`]. Versions `1..=REPORT_SCHEMA` load; anything newer,
/// non-numeric or missing is refused with a typed error rather than
/// being silently misread.
///
/// # Errors
///
/// Returns [`MceError::SchemaVersion`] naming the artifact (`run
/// report`), the version found and the newest supported one.
pub fn check_report_schema(doc: &Value) -> Result<(), MceError> {
    match doc.get("schema").and_then(Value::as_u64) {
        Some(v) if (1..=REPORT_SCHEMA).contains(&v) => Ok(()),
        Some(v) => Err(MceError::schema_version(
            "run report",
            v.to_string(),
            REPORT_SCHEMA,
        )),
        None => Err(MceError::schema_version(
            "run report",
            match doc.get("schema") {
                Some(v) => render_scalar(v),
                None => "none".to_owned(),
            },
            REPORT_SCHEMA,
        )),
    }
}

/// Best-effort peak resident set size of this process, in bytes. Linux
/// reads `VmHWM` from `/proc/self/status`; elsewhere (or when the read
/// fails) there is no portable source and the result is `None`.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Serializes the `provenance` report section: schema version first,
/// then one record per Phase-I architecture in exploration order, each
/// listing its estimate-cloud points with origin tags, kept/pruned
/// verdicts, front memberships and (for pruned points) the kept point
/// that dominated them.
fn provenance_section(archs: &[ArchProvenance]) -> String {
    let mut s = String::from("  \"provenance\": {\n");
    s.push_str(&format!("    \"schema\": {PROVENANCE_SCHEMA},\n"));
    let rendered: Vec<String> = archs
        .iter()
        .map(|a| {
            let points: Vec<String> = a
                .points
                .iter()
                .map(|p| {
                    let fronts: Vec<String> = p.fronts.iter().map(|f| format!("\"{f}\"")).collect();
                    format!(
                        "        {{\"index\": {}, \"describe\": \"{}\", \"origin\": \"{}\", \
                         \"kept\": {}, \"fronts\": [{}], \"dominated_by\": {}}}",
                        p.index,
                        escape_json(&p.describe),
                        escape_json(&p.origin),
                        p.kept,
                        fronts.join(", "),
                        p.dominated_by
                            .map_or_else(|| "null".to_owned(), |d| d.to_string()),
                    )
                })
                .collect();
            format!(
                "      {{\"arch\": {}, \"mem\": \"{}\", \"kept\": {}, \"pruned\": {}, \
                 \"points\": [\n{}\n      ]}}",
                a.arch,
                escape_json(&a.mem),
                a.kept,
                a.pruned,
                points.join(",\n")
            )
        })
        .collect();
    s.push_str(&format!(
        "    \"archs\": [\n{}\n    ]\n",
        rendered.join(",\n")
    ));
    s.push_str("  },\n");
    s
}

/// Converts a borrowed time-series snapshot into the owned
/// `(name, [(at, value)])` form the report stores.
fn owned_series(
    series: Vec<(&'static str, Vec<obs::SeriesPoint>)>,
) -> Vec<(String, Vec<(u64, u64)>)> {
    series
        .into_iter()
        .map(|(name, points)| {
            (
                name.to_owned(),
                points.into_iter().map(|p| (p.at, p.value)).collect(),
            )
        })
        .collect()
}

/// One time-series channel as `"key": {"name": [[at, value], ...]}`, at
/// the `wall_clock.timeseries` nesting depth (no trailing comma).
fn series_channel(key: &str, series: &[(String, Vec<(u64, u64)>)]) -> String {
    if series.is_empty() {
        return format!("      \"{key}\": {{}}");
    }
    let lines: Vec<String> = series
        .iter()
        .map(|(name, points)| {
            let pts: Vec<String> = points
                .iter()
                .map(|(at, value)| format!("[{at}, {value}]"))
                .collect();
            format!("        \"{}\": [{}]", escape_json(name), pts.join(", "))
        })
        .collect();
    format!("      \"{key}\": {{\n{}\n      }}", lines.join(",\n"))
}

/// Renders a `[(name, value)]` list as one pretty-printed JSON object
/// line block under `key`, with a trailing comma.
fn named_u64_object(key: &str, entries: &[(String, u64)]) -> String {
    if entries.is_empty() {
        return format!("  \"{key}\": {{}},\n");
    }
    let lines: Vec<String> = entries
        .iter()
        .map(|(name, v)| format!("    \"{}\": {v}", escape_json(name)))
        .collect();
    format!("  \"{key}\": {{\n{}\n  }},\n", lines.join(",\n"))
}

/// `f64` in its shortest round-trip form, with a guaranteed numeric JSON
/// token (`Display` already never produces exponents for our ranges, but
/// integral values need the `.0` stripped consistently — `Display` does
/// that for us; non-finite values clamp to 0).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

// ---------------------------------------------------------------------------
// Rendering: markdown / HTML with an inline SVG frontier plot
// ---------------------------------------------------------------------------

/// Renders one or more parsed report JSONs ([`REPORT_SCHEMA`] version 1)
/// as a self-contained markdown summary: run header, config, candidate
/// funnel, cache effectiveness, latency percentiles, frontier evolution
/// and an inline SVG cost/latency frontier plot. No external assets.
pub fn render_markdown(reports: &[(String, Value)]) -> String {
    let mut out = String::from("# Exploration run report\n");
    for (source, report) in reports {
        out.push('\n');
        out.push_str(&render_one(source, report));
    }
    out
}

fn render_one(source: &str, report: &Value) -> String {
    let mut out = String::new();
    let workload = report
        .get("workload")
        .and_then(|v| v.as_str())
        .unwrap_or("<unknown>");
    out.push_str(&format!("## `{workload}` — {source}\n\n"));
    if let Some(digest) = report.get("workload_digest").and_then(|v| v.as_str()) {
        out.push_str(&format!("Workload digest `{digest}`"));
        if let Some(elapsed) = report
            .get("wall_clock")
            .and_then(|w| w.get("elapsed_s"))
            .and_then(|v| v.as_f64())
        {
            out.push_str(&format!(", explored in {elapsed:.2} s"));
        }
        out.push_str(".\n\n");
    }
    if let Some("truncated") = report.get("status").and_then(|v| v.as_str()) {
        let reason = report
            .get("stop_reason")
            .and_then(|v| v.as_str())
            .unwrap_or("unknown");
        out.push_str(&format!(
            "**Run truncated** (`{reason}`): the sections below cover only \
             the architectures committed before the bound tripped.\n\n"
        ));
    }
    if let Some(Value::Object(config)) = report.get("config") {
        out.push_str("### Configuration\n\n| knob | value |\n|---|---|\n");
        for (k, v) in config {
            out.push_str(&format!("| {k} | {} |\n", render_scalar(v)));
        }
        out.push('\n');
    }
    if let Some(Value::Object(counters)) = report.get("counters") {
        if !counters.is_empty() {
            out.push_str("### Candidate funnel\n\n| counter | value |\n|---|---|\n");
            for (k, v) in counters {
                out.push_str(&format!("| {k} | {} |\n", render_scalar(v)));
            }
            out.push('\n');
        }
    }
    if let Some(cache) = report.get("eval_cache") {
        let g = |k: &str| cache.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        out.push_str(&format!(
            "### Evaluation cache\n\n{} hits, {} misses ({:.1}% hit rate), \
             {} inserts, {} evictions.\n\n",
            g("hits"),
            g("misses"),
            g("hit_rate") * 100.0,
            g("inserts"),
            g("evictions"),
        ));
    }
    if let Some(status) = report.get("status").and_then(|v| v.as_str()) {
        out.push_str("### Budget & stop reason\n\n");
        match report.get("stop_reason").and_then(|v| v.as_str()) {
            Some(reason) => out.push_str(&format!(
                "Status **{status}**: stopped by the `{reason}` bound at a safe point.\n"
            )),
            None => out.push_str(&format!(
                "Status **{status}**: no bound tripped — the exploration ran to the end.\n"
            )),
        }
        let degraded = report
            .get("wall_clock")
            .and_then(|w| w.get("degraded"))
            .and_then(|v| v.as_array())
            .map_or(0, <[Value]>::len);
        if degraded > 0 {
            out.push_str(&format!(
                "{degraded} evaluation(s) were degraded to estimates by the \
                 per-candidate watchdog.\n"
            ));
        }
        if let Some(Value::Object(budget)) = report.get("wall_clock").and_then(|w| w.get("budget"))
        {
            if !budget.is_empty() {
                out.push_str("\n| budget event | count |\n|---|---|\n");
                for (k, v) in budget {
                    out.push_str(&format!("| {k} | {} |\n", render_scalar(v)));
                }
            }
        }
        out.push('\n');
    }
    if let Some(hists) = report
        .get("wall_clock")
        .and_then(|w| w.get("histograms"))
        .and_then(|v| v.as_array())
    {
        if !hists.is_empty() {
            out.push_str(
                "### Latency histograms (µs)\n\n\
                 | histogram | count | p50 | p90 | p99 | max |\n|---|---|---|---|---|---|\n",
            );
            for h in hists {
                let g = |k: &str| {
                    h.get(k)
                        .and_then(|v| v.as_u64())
                        .map(|u| u.to_string())
                        .unwrap_or_else(|| "?".to_owned())
                };
                let name = h.get("name").and_then(|v| v.as_str()).unwrap_or("?");
                out.push_str(&format!(
                    "| {name} | {} | {} | {} | {} | {} |\n",
                    g("count"),
                    g("p50"),
                    g("p90"),
                    g("p99"),
                    g("max"),
                ));
            }
            out.push('\n');
        }
    }
    if let Some(evo) = report.get("frontier_evolution").and_then(|v| v.as_array()) {
        if !evo.is_empty() {
            out.push_str(
                "### Frontier evolution\n\n\
                 | archs explored | estimated | frontier size | hypervolume |\n\
                 |---|---|---|---|\n",
            );
            for snap in evo {
                let u = |k: &str| {
                    snap.get(k)
                        .and_then(|v| v.as_u64())
                        .map(|x| x.to_string())
                        .unwrap_or_else(|| "?".to_owned())
                };
                let hv = snap
                    .get("hypervolume")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                out.push_str(&format!(
                    "| {} | {} | {} | {hv:.4} |\n",
                    u("archs_explored"),
                    u("estimated"),
                    u("frontier_size"),
                ));
            }
            out.push('\n');
        }
    }
    if let Some(archs) = report
        .get("provenance")
        .and_then(|p| p.get("archs"))
        .and_then(|v| v.as_array())
    {
        if !archs.is_empty() {
            out.push_str("### Frontier provenance\n\n");
            for a in archs {
                let arch = a.get("arch").and_then(|v| v.as_u64()).unwrap_or(0);
                let mem = a.get("mem").and_then(|v| v.as_str()).unwrap_or("?");
                let kept = a.get("kept").and_then(|v| v.as_u64()).unwrap_or(0);
                let pruned = a.get("pruned").and_then(|v| v.as_u64()).unwrap_or(0);
                out.push_str(&format!(
                    "Architecture {arch} (`{mem}`): {kept} kept, {pruned} pruned.\n"
                ));
                let empty = Vec::new();
                let points = a.get("points").and_then(|v| v.as_array()).unwrap_or(&empty);
                let mut shown = 0usize;
                for p in points {
                    if matches!(p.get("kept"), Some(Value::Bool(false))) {
                        if shown == 8 {
                            out.push_str("- …\n");
                            break;
                        }
                        let idx = p.get("index").and_then(|v| v.as_u64()).unwrap_or(0);
                        let origin = p.get("origin").and_then(|v| v.as_str()).unwrap_or("?");
                        match p.get("dominated_by").and_then(Value::as_u64) {
                            Some(d) => {
                                out.push_str(&format!("- point #{idx} ({origin}) lost to #{d}\n"))
                            }
                            None => out.push_str(&format!(
                                "- point #{idx} ({origin}) pruned outside all fronts\n"
                            )),
                        }
                        shown += 1;
                    }
                }
                out.push('\n');
            }
        }
    }
    let front: Vec<(f64, f64)> = report
        .get("pareto")
        .and_then(|p| p.get("front_cost_latency"))
        .and_then(|v| v.as_array())
        .map(|pts| {
            pts.iter()
                .filter_map(|pt| {
                    let xy = pt.as_array()?;
                    Some((xy.first()?.as_f64()?, xy.get(1)?.as_f64()?))
                })
                .collect()
        })
        .unwrap_or_default();
    if let Some(p) = report.get("pareto") {
        let g = |k: &str| p.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        out.push_str(&format!(
            "### Pareto fronts\n\nCost/latency {}, latency/energy {}, cost/energy {}, \
             full 3-D {} designs.\n\n",
            g("cost_latency"),
            g("latency_energy"),
            g("cost_energy"),
            g("full_3d"),
        ));
    }
    if !front.is_empty() {
        out.push_str(&frontier_svg(&front));
        out.push('\n');
    }
    out
}

fn render_scalar(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(n) => {
            if n.fract() == 0.0 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Null => "null".to_owned(),
        _ => "…".to_owned(),
    }
}

/// An inline SVG scatter+line plot of a cost/latency frontier. One line,
/// so the markdown → HTML pass can pass it through verbatim.
fn frontier_svg(points: &[(f64, f64)]) -> String {
    const W: f64 = 480.0;
    const H: f64 = 300.0;
    const M: f64 = 45.0; // margin for axis labels
    let (mut x0, mut x1) = (f64::MAX, f64::MIN);
    let (mut y0, mut y1) = (f64::MAX, f64::MIN);
    for &(x, y) in points {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    // Degenerate spans still need a nonzero scale.
    let xs = (x1 - x0).max(x1.abs().max(1.0) * 1e-9);
    let ys = (y1 - y0).max(y1.abs().max(1.0) * 1e-9);
    let px = |x: f64| M + (x - x0) / xs * (W - 2.0 * M);
    let py = |y: f64| H - M - (y - y0) / ys * (H - 2.0 * M);
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" role=\"img\">\
         <rect width=\"{W}\" height=\"{H}\" fill=\"#fff\"/>\
         <line x1=\"{M}\" y1=\"{edge}\" x2=\"{right}\" y2=\"{edge}\" stroke=\"#333\"/>\
         <line x1=\"{M}\" y1=\"{M}\" x2=\"{M}\" y2=\"{edge}\" stroke=\"#333\"/>",
        edge = H - M,
        right = W - M,
    );
    let path: Vec<String> = points
        .iter()
        .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
        .collect();
    svg.push_str(&format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"#1f77b4\" stroke-width=\"1.5\"/>",
        path.join(" ")
    ));
    for &(x, y) in points {
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"#1f77b4\"/>",
            px(x),
            py(y)
        ));
    }
    svg.push_str(&format!(
        "<text x=\"{mid}\" y=\"{bottom}\" text-anchor=\"middle\" \
         font-size=\"11\" fill=\"#333\">gate cost ({x0:.0} – {x1:.0})</text>\
         <text x=\"12\" y=\"{vmid}\" text-anchor=\"middle\" font-size=\"11\" fill=\"#333\" \
         transform=\"rotate(-90 12 {vmid})\">latency, cycles ({y0:.2} – {y1:.2})</text>\
         </svg>",
        mid = W / 2.0,
        bottom = H - 8.0,
        vmid = H / 2.0,
    ));
    svg
}

/// Wraps [`render_markdown`] output as a single self-contained HTML
/// document. The converter is deliberately line-based — it understands
/// exactly the markdown this module emits (headings, pipe tables,
/// paragraphs and inline `<svg>` lines).
pub fn markdown_to_html(md: &str) -> String {
    let mut body = String::new();
    let mut in_table = false;
    for line in md.lines() {
        let is_row = line.starts_with('|') && line.ends_with('|');
        if in_table && !is_row {
            body.push_str("</table>\n");
            in_table = false;
        }
        if let Some(h) = line.strip_prefix("### ") {
            body.push_str(&format!("<h3>{}</h3>\n", html_inline(h)));
        } else if let Some(h) = line.strip_prefix("## ") {
            body.push_str(&format!("<h2>{}</h2>\n", html_inline(h)));
        } else if let Some(h) = line.strip_prefix("# ") {
            body.push_str(&format!("<h1>{}</h1>\n", html_inline(h)));
        } else if is_row {
            let cells: Vec<&str> = line[1..line.len() - 1].split('|').collect();
            if cells.iter().all(|c| {
                let t = c.trim();
                !t.is_empty() && t.chars().all(|ch| ch == '-' || ch == ':')
            }) {
                continue; // the |---|---| separator row
            }
            let tag = if in_table { "td" } else { "th" };
            if !in_table {
                body.push_str("<table>\n");
                in_table = true;
            }
            body.push_str("<tr>");
            for c in cells {
                body.push_str(&format!("<{tag}>{}</{tag}>", html_inline(c.trim())));
            }
            body.push_str("</tr>\n");
        } else if line.starts_with("<svg") {
            body.push_str(line);
            body.push('\n');
        } else if !line.trim().is_empty() {
            body.push_str(&format!("<p>{}</p>\n", html_inline(line)));
        }
    }
    if in_table {
        body.push_str("</table>\n");
    }
    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>Exploration run report</title>\n<style>\n\
         body{{font-family:system-ui,sans-serif;max-width:60rem;margin:2rem auto;\
         padding:0 1rem;color:#222}}\n\
         table{{border-collapse:collapse;margin:1rem 0}}\n\
         th,td{{border:1px solid #ccc;padding:.3rem .6rem;text-align:left}}\n\
         th{{background:#f4f4f4}}\ncode{{background:#f4f4f4;padding:0 .2rem}}\n\
         </style></head>\n<body>\n{body}</body></html>\n"
    )
}

/// Escapes HTML and converts `` `code` `` spans — the only inline
/// markdown this module's renderer produces.
fn html_inline(text: &str) -> String {
    let escaped = text
        .replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;");
    let mut out = String::with_capacity(escaped.len());
    let mut in_code = false;
    for c in escaped.chars() {
        if c == '`' {
            out.push_str(if in_code { "</code>" } else { "<code>" });
            in_code = !in_code;
        } else {
            out.push(c);
        }
    }
    if in_code {
        out.push_str("</code>");
    }
    out
}

// ---------------------------------------------------------------------------
// Bench gate: BENCH_eval.json regression comparison
// ---------------------------------------------------------------------------

/// One field's comparison in a bench-gate run.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// The `BENCH_eval.json` field compared.
    pub field: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// The tolerance this field was judged against: the caller's value,
    /// or a per-field pin (the cancellation-check overhead is a design
    /// contract, fixed at 2% regardless of `--tolerance`).
    pub tolerance: f64,
    /// True when the current value is outside the tolerated band in the
    /// bad direction.
    pub regressed: bool,
}

/// Compares a fresh `BENCH_eval.json` against a committed baseline.
///
/// Policy: the wall-time fields (`per_access_dispatch_ns`,
/// `block_replay_ns`) regress when they grow past `baseline × (1 +
/// tolerance)`; the derived `block_replay_speedup` regresses when it
/// falls below `baseline × (1 − tolerance)`. The
/// `block_replay_cancellable_overhead` ratio (cancellation-token replay
/// time over plain replay time) is pinned at a fixed 2% tolerance —
/// `--tolerance` does not loosen it — because "the cancellation check is
/// hot-path free" is a design contract, not a machine-speed question.
/// Improvements never fail the gate, however large — the gate bounds
/// regressions, it does not pin performance.
///
/// # Errors
///
/// Returns a message when either document is missing one of the compared
/// fields or a baseline value is non-positive (a ratio would be
/// meaningless).
pub fn bench_gate_compare(
    baseline: &Value,
    current: &Value,
    tolerance: f64,
) -> Result<Vec<GateCheck>, String> {
    let field = |doc: &Value, which: &str, key: &str| {
        doc.get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{which} is missing numeric field `{key}`"))
    };
    // (field, higher-is-worse, pinned tolerance overriding the caller's)
    const GATED_FIELDS: [(&str, bool, Option<f64>); 4] = [
        ("per_access_dispatch_ns", true, None),
        ("block_replay_ns", true, None),
        ("block_replay_speedup", false, None),
        ("block_replay_cancellable_overhead", true, Some(0.02)),
    ];
    let mut checks = Vec::new();
    for (key, higher_is_worse, pinned) in GATED_FIELDS {
        let b = field(baseline, "baseline", key)?;
        let c = field(current, "current", key)?;
        if b <= 0.0 {
            return Err(format!("baseline `{key}` must be positive, got {b}"));
        }
        let tolerance = pinned.unwrap_or(tolerance);
        let ratio = c / b;
        let regressed = if higher_is_worse {
            ratio > 1.0 + tolerance
        } else {
            ratio < 1.0 - tolerance
        };
        checks.push(GateCheck {
            field: key,
            baseline: b,
            current: c,
            ratio,
            tolerance,
            regressed,
        });
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_obs::json;

    fn sample_report() -> RunReport {
        RunReport {
            workload_name: "vocoder".to_owned(),
            workload_digest: "00112233445566778899aabbccddeeff".to_owned(),
            status: "complete".to_owned(),
            stop_reason: None,
            config: ReportConfig {
                apex_trace_len: 10_000,
                conex_trace_len: 15_000,
                strategy: "Pruned".to_owned(),
                local_keep: 16,
                max_logical_connections: 8,
                max_allocations_per_level: 64,
                frontier_sample_every: 1,
                cache_capacity: 1 << 16,
            },
            counters: vec![
                ("conex.candidates_enumerated".to_owned(), 120),
                ("conex.candidates_estimated".to_owned(), 100),
            ],
            gauges: vec![("conex.frontier_size_max".to_owned(), 7)],
            eval_cache: CacheSummary::from_stats(&CacheStats {
                hits: 25,
                misses: 75,
                inserts: 75,
                evictions: 0,
            }),
            pareto: ParetoSummary {
                cost_latency: 3,
                latency_energy: 2,
                cost_energy: 2,
                full_3d: 4,
                front_cost_latency: vec![(900, 4.5), (1200, 3.25), (2000, 2.0)],
            },
            frontier_evolution: vec![mce_conex::FrontierSnapshot {
                archs_explored: 1,
                estimated: 100,
                frontier_size: 7,
                hypervolume: 0.42,
            }],
            provenance: Vec::new(),
            wall_clock: WallClock {
                elapsed_s: 1.25,
                resumed: false,
                threads: 0,
                peak_rss_bytes: None,
                degraded: Vec::new(),
                budget_counters: Vec::new(),
                timeseries_logical: vec![(
                    "conex.candidates_estimated".to_owned(),
                    vec![(1, 40), (2, 100)],
                )],
                timeseries_wall: vec![("conex.simulated".to_owned(), vec![(1500, 4)])],
                histograms: vec![(
                    "conex.simulate.item_us".to_owned(),
                    HistogramSummary {
                        count: 40,
                        sum: 4000,
                        min: 50,
                        max: 300,
                        p50: 90,
                        p90: 200,
                        p99: 290,
                    },
                )],
            },
        }
    }

    #[test]
    fn report_json_parses_and_orders_wall_clock_last() {
        let r = sample_report();
        let text = r.to_json();
        let v = json::parse(&text).expect("report JSON parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_u64()),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(v.get("workload").and_then(|s| s.as_str()), Some("vocoder"));
        assert_eq!(
            v.get("eval_cache")
                .and_then(|c| c.get("hit_rate"))
                .and_then(|x| x.as_f64()),
            Some(0.25)
        );
        // wall_clock is the last top-level key in the serialized text.
        let wc = text.find("\"wall_clock\"").expect("has wall_clock");
        for key in [
            "\"schema\"",
            "\"status\"",
            "\"stop_reason\"",
            "\"config\"",
            "\"counters\"",
            "\"pareto\"",
            "\"frontier_evolution\"",
        ] {
            assert!(
                text.find(key).unwrap() < wc,
                "{key} must precede wall_clock"
            );
        }
    }

    #[test]
    fn budget_events_stay_out_of_the_stable_prefix() {
        let mut r = sample_report();
        r.status = "truncated".to_owned();
        r.stop_reason = Some("deadline".to_owned());
        r.wall_clock.budget_counters = vec![
            ("budget.degraded_evals".to_owned(), 2),
            ("budget.timeouts".to_owned(), 2),
        ];
        r.wall_clock.degraded = vec![DegradedEval {
            phase: "refine".to_owned(),
            arch: None,
            index: 3,
            reason: "timeout".to_owned(),
        }];
        let text = r.to_json();
        let v = json::parse(&text).expect("truncated report JSON parses");
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("truncated"));
        assert_eq!(
            v.get("stop_reason").and_then(|s| s.as_str()),
            Some("deadline")
        );
        assert_eq!(
            v.get("wall_clock")
                .and_then(|w| w.get("budget"))
                .and_then(|b| b.get("budget.timeouts"))
                .and_then(|x| x.as_u64()),
            Some(2)
        );
        // Status/stop_reason are deterministic for logical budgets and
        // live in the stable prefix; budget events and degraded
        // annotations are timing-dependent and must not.
        let prefix = RunReport::stable_json_prefix(&text);
        assert!(prefix.contains("\"status\": \"truncated\""));
        assert!(prefix.contains("\"stop_reason\": \"deadline\""));
        assert!(!prefix.contains("budget.timeouts"));
        assert!(!prefix.contains("\"degraded\""));
        assert!(text.contains("\"reason\": \"timeout\""));
        // The markdown render warns about truncation and itemizes the
        // budget events in the "Budget & stop reason" section.
        let md = render_markdown(&[("r.json".to_owned(), v)]);
        assert!(md.contains("Run truncated"), "{md}");
        assert!(md.contains("`deadline`"), "{md}");
        assert!(md.contains("### Budget & stop reason"), "{md}");
        assert!(md.contains("| budget.timeouts | 2 |"), "{md}");
        assert!(md.contains("1 evaluation(s) were degraded"), "{md}");
    }

    #[test]
    fn timeseries_embed_inside_wall_clock_only() {
        let r = sample_report();
        let text = r.to_json();
        let v = json::parse(&text).expect("report with timeseries parses");
        let logical = v
            .get("wall_clock")
            .and_then(|w| w.get("timeseries"))
            .and_then(|t| t.get("logical"))
            .and_then(|l| l.get("conex.candidates_estimated"))
            .and_then(|s| s.as_array())
            .expect("logical series embedded");
        assert_eq!(logical.len(), 2);
        assert_eq!(logical[1].as_array().and_then(|p| p[1].as_u64()), Some(100));
        assert!(v
            .get("wall_clock")
            .and_then(|w| w.get("timeseries"))
            .and_then(|t| t.get("wall"))
            .and_then(|wl| wl.get("conex.simulated"))
            .is_some());
        // Both channels live inside wall_clock: after budget, before
        // histograms, and never in the stable prefix.
        let ts = text.find("\"timeseries\"").expect("has timeseries");
        assert!(text.find("\"budget\"").unwrap() < ts);
        assert!(ts < text.find("\"histograms\"").unwrap());
        assert!(!RunReport::stable_json_prefix(&text).contains("\"timeseries\""));
    }

    #[test]
    fn stable_prefix_strips_only_wall_clock() {
        let mut a = sample_report();
        let mut b = sample_report();
        a.wall_clock.elapsed_s = 1.0;
        b.wall_clock.elapsed_s = 99.0;
        b.wall_clock.histograms.clear();
        let (ja, jb) = (a.to_json(), b.to_json());
        assert_ne!(ja, jb);
        assert_eq!(
            RunReport::stable_json_prefix(&ja),
            RunReport::stable_json_prefix(&jb)
        );
        // A deterministic-section difference survives the strip.
        let mut c = sample_report();
        c.pareto.cost_latency = 99;
        assert_ne!(
            RunReport::stable_json_prefix(&ja),
            RunReport::stable_json_prefix(&c.to_json())
        );
    }

    fn sample_provenance() -> Vec<ArchProvenance> {
        vec![ArchProvenance {
            arch: 0,
            mem: "mem[2x1024]".to_owned(),
            kept: 1,
            pruned: 1,
            points: vec![
                mce_conex::PointProvenance {
                    index: 0,
                    describe: "bus(w=2)".to_owned(),
                    origin: "evaluated".to_owned(),
                    kept: true,
                    fronts: vec!["cost-latency".to_owned()],
                    dominated_by: None,
                },
                mce_conex::PointProvenance {
                    index: 1,
                    describe: "mux(\"a\")".to_owned(),
                    origin: "cache-hit".to_owned(),
                    kept: false,
                    fronts: Vec::new(),
                    dominated_by: Some(0),
                },
            ],
        }]
    }

    #[test]
    fn provenance_section_sits_inside_the_stable_prefix_and_strips_cleanly() {
        let plain = sample_report();
        let mut explained = sample_report();
        explained.provenance = sample_provenance();
        let (jp, je) = (plain.to_json(), explained.to_json());
        // Empty provenance emits no section at all.
        assert!(!jp.contains("\"provenance\""));
        // Non-empty provenance lands between frontier_evolution and
        // wall_clock: versioned, parseable, and inside the stable prefix.
        let v = json::parse(&je).expect("explained report parses");
        let prov = v.get("provenance").expect("has provenance");
        assert_eq!(
            prov.get("schema").and_then(|s| s.as_u64()),
            Some(PROVENANCE_SCHEMA)
        );
        let archs = prov.get("archs").and_then(|a| a.as_array()).unwrap();
        assert_eq!(archs.len(), 1);
        let pts = archs[0].get("points").and_then(|p| p.as_array()).unwrap();
        assert_eq!(
            pts[1].get("origin").and_then(|o| o.as_str()),
            Some("cache-hit")
        );
        assert_eq!(pts[1].get("dominated_by").and_then(Value::as_u64), Some(0));
        let fe = je.find("\"frontier_evolution\"").unwrap();
        let pr = je.find("\"provenance\"").unwrap();
        let wc = je.find("\"wall_clock\"").unwrap();
        assert!(fe < pr && pr < wc);
        assert!(RunReport::stable_json_prefix(&je).contains("\"provenance\""));
        // The determinism contract: stripping the section recovers the
        // unexplained report byte for byte.
        assert_eq!(RunReport::without_provenance(&je), jp);
        assert_eq!(RunReport::without_provenance(&jp), jp);
    }

    #[test]
    fn provenance_renders_in_markdown() {
        let mut r = sample_report();
        r.provenance = sample_provenance();
        let v = json::parse(&r.to_json()).unwrap();
        let md = render_markdown(&[("r.json".to_owned(), v)]);
        assert!(md.contains("### Frontier provenance"), "{md}");
        assert!(
            md.contains("Architecture 0 (`mem[2x1024]`): 1 kept, 1 pruned."),
            "{md}"
        );
        assert!(md.contains("point #1 (cache-hit) lost to #0"), "{md}");
    }

    #[test]
    fn report_schema_check_accepts_supported_and_refuses_the_rest() {
        let ok = json::parse(&format!("{{\"schema\": {REPORT_SCHEMA}}}")).unwrap();
        assert!(check_report_schema(&ok).is_ok());
        for (doc, found) in [
            ("{\"schema\": 999}", "999"),
            ("{\"schema\": \"x\"}", "x"),
            ("{}", "none"),
        ] {
            let err = check_report_schema(&json::parse(doc).unwrap()).unwrap_err();
            match &err {
                MceError::SchemaVersion {
                    artifact,
                    found: f,
                    supported,
                } => {
                    assert_eq!(artifact, "run report");
                    assert_eq!(f, found);
                    assert_eq!(*supported, REPORT_SCHEMA);
                }
                other => panic!("expected SchemaVersion, got {other:?}"),
            }
        }
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        // On Linux the probe must find a value at least as large as one
        // page; elsewhere None is the contract.
        if std::path::Path::new("/proc/self/status").exists() {
            let rss = peak_rss_bytes().expect("VmHWM readable");
            assert!(rss >= 4096, "implausible peak RSS {rss}");
        }
    }

    #[test]
    fn markdown_covers_percentiles_cache_and_frontier() {
        let r = sample_report();
        let v = json::parse(&r.to_json()).unwrap();
        let md = render_markdown(&[("r.json".to_owned(), v)]);
        for needle in [
            "conex.simulate.item_us",
            "| 90 | 200 | 290 |", // p50/p90/p99 row
            "25.0% hit rate",
            "Frontier evolution",
            "0.4200",
            "<svg",
            "</svg>",
        ] {
            assert!(md.contains(needle), "markdown missing {needle:?}:\n{md}");
        }
    }

    #[test]
    fn html_is_self_contained_and_balanced() {
        let r = sample_report();
        let v = json::parse(&r.to_json()).unwrap();
        let html = markdown_to_html(&render_markdown(&[("r.json".to_owned(), v)]));
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert_eq!(
            html.matches("<table>").count(),
            html.matches("</table>").count()
        );
        assert!(html.contains("<svg"));
        assert!(
            !html.contains("http://") || html.contains("xmlns"),
            "no external assets"
        );
    }

    fn bench_doc_with_overhead(per_access: f64, block: f64, speedup: f64, overhead: f64) -> Value {
        json::parse(&format!(
            "{{\"workload\": \"vocoder\", \"trace_len\": 30000, \
             \"per_access_dispatch_ns\": {per_access}, \"block_replay_ns\": {block}, \
             \"block_replay_speedup\": {speedup}, \
             \"block_replay_cancellable_overhead\": {overhead}}}"
        ))
        .unwrap()
    }

    fn bench_doc(per_access: f64, block: f64, speedup: f64) -> Value {
        bench_doc_with_overhead(per_access, block, speedup, 1.0)
    }

    #[test]
    fn bench_gate_passes_identical_and_improved() {
        let base = bench_doc(1000.0, 500.0, 2.0);
        let same = bench_gate_compare(&base, &base, 0.2).unwrap();
        assert!(same.iter().all(|c| !c.regressed), "{same:?}");
        // Big improvement: faster and higher speedup never regresses.
        let better = bench_doc(800.0, 200.0, 4.0);
        let checks = bench_gate_compare(&base, &better, 0.2).unwrap();
        assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");
    }

    #[test]
    fn bench_gate_flags_twenty_percent_regressions() {
        let base = bench_doc(1000.0, 500.0, 2.0);
        // +25% block replay time (and the speedup drop it implies):
        // outside the 20% band. Exactly-at-boundary values pass the gate,
        // so both injected values sit strictly outside.
        let slow = bench_doc(1000.0, 625.0, 1.5);
        let checks = bench_gate_compare(&base, &slow, 0.2).unwrap();
        let by_field = |f: &str| checks.iter().find(|c| c.field == f).unwrap();
        assert!(by_field("block_replay_ns").regressed);
        assert!(by_field("block_replay_speedup").regressed);
        assert!(!by_field("per_access_dispatch_ns").regressed);
        // Just inside the band: passes.
        let ok = bench_gate_compare(&base, &bench_doc(1100.0, 550.0, 2.0), 0.2).unwrap();
        assert!(ok.iter().all(|c| !c.regressed), "{ok:?}");
    }

    #[test]
    fn cancellation_overhead_tolerance_is_pinned_at_two_percent() {
        let base = bench_doc(1000.0, 500.0, 2.0);
        // +5% cancellation-check overhead regresses even under the
        // default 20% tolerance — the 2% pin is not caller-loosenable.
        let costly = bench_doc_with_overhead(1000.0, 500.0, 2.0, 1.05);
        let checks = bench_gate_compare(&base, &costly, 0.2).unwrap();
        let check = checks
            .iter()
            .find(|c| c.field == "block_replay_cancellable_overhead")
            .unwrap();
        assert!(check.regressed, "{checks:?}");
        assert_eq!(check.tolerance, 0.02);
        // Within the pin: passes even when the caller's tolerance is
        // tighter than 2% (the pin replaces, not caps).
        let fine = bench_doc_with_overhead(1000.0, 500.0, 2.0, 1.015);
        let checks = bench_gate_compare(&base, &fine, 0.001).unwrap();
        let check = checks
            .iter()
            .find(|c| c.field == "block_replay_cancellable_overhead")
            .unwrap();
        assert!(!check.regressed, "{checks:?}");
    }

    #[test]
    fn bench_gate_rejects_malformed_documents() {
        let base = bench_doc(1000.0, 500.0, 2.0);
        let missing = json::parse("{\"workload\": \"x\"}").unwrap();
        let err = bench_gate_compare(&base, &missing, 0.2).unwrap_err();
        assert!(err.contains("per_access_dispatch_ns"), "{err}");
        let zero = bench_doc(0.0, 500.0, 2.0);
        let err = bench_gate_compare(&zero, &base, 0.2).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }
}
