//! Offline stand-in for rand 0.8 covering the surface this workspace uses:
//! `SmallRng`, `SeedableRng::seed_from_u64`, `gen::<u64/bool/f64>()` and
//! `gen_range` on integer ranges. The generator is a real, deterministic
//! xoshiro256++ so seeded workloads still produce stable traces; streams
//! are not guaranteed bit-identical to upstream rand.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // PCG-style expansion, as in rand_core's default implementation.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 1442695040888963407;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard-distribution sampling for the primitive types the workspace
/// draws with `rng.gen::<T>()`.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform sampling from half-open and inclusive integer ranges.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, matching the algorithm behind rand 0.8's 64-bit
    /// `SmallRng` (seeding differs from upstream only if the seed is all
    /// zeros, which `seed_from_u64` never produces).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not be seeded with all zeros.
                s = [
                    0x9e3779b97f4a7c15,
                    0xbf58476d1ce4e5b9,
                    0x94d049bb133111eb,
                    0x2545f4914f6cdd1d,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}
