//! Offline stand-in for serde_json over the value-model serde stand-in in
//! `.devstubs/serde` (see `.devstubs/README.md`).
//!
//! Implements the surface this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — with a real JSON printer and a
//! strict recursive-descent parser. Output conventions follow upstream
//! serde_json: compact form has no whitespace, pretty form indents by two
//! spaces, floats print in shortest round-trip form, and non-finite floats
//! serialize as `null`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn print_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip form (`1.0`, `1e30`),
                // matching upstream's ryu closely enough to re-parse exactly.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => print_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                print_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    let combined = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + (second.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. Validate only this
                    // 2-4 byte sequence — re-validating the whole remaining
                    // input per character makes string parsing quadratic.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = chunk.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let n = u32::from_str_radix(chunk, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| self.err("invalid number"))
            })
        } else {
            text.parse::<u64>().map(Value::U64).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| self.err("invalid number"))
            })
        }
    }
}
