//! Offline stand-in for criterion, wired in via `[patch.crates-io]` in
//! `.cargo/config.toml` (see `.devstubs/README.md`).
//!
//! A real, minimal benchmark harness covering the surface this
//! workspace's benches use: `Criterion::benchmark_group`, group
//! `sample_size` / `bench_function` / `finish`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each bench function
//! runs one warm-up iteration plus `sample_size` timed samples and
//! reports min/median/max to stderr. There are no HTML reports, no
//! statistical regression analysis, and no saved baselines — use the
//! workspace's own `mce bench-gate` for regression gating.

use std::time::{Duration, Instant};

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        // Upstream parses --bench/--save-baseline/...; the stand-in
        // accepts and ignores whatever cargo bench passed.
        self
    }

    pub fn final_summary(self) {}

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_bench(&name.into(), sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_bench(&label, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        black_box(out);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up pass, unrecorded.
    let mut warmup = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut warmup);
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        if b.iterations > 0 {
            samples.push(b.elapsed / u32::try_from(b.iterations).unwrap_or(1));
        }
    }
    samples.sort_unstable();
    if samples.is_empty() {
        eprintln!("bench {label}: no samples (closure never called iter)");
        return;
    }
    let median = samples[samples.len() / 2];
    eprintln!(
        "bench {label}: median {:?} (min {:?}, max {:?}, {} samples)",
        median,
        samples[0],
        samples[samples.len() - 1],
        samples.len()
    );
}

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work, same contract as upstream's `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
