//! Offline stand-in for serde_derive: real derive macros built on plain
//! `proc_macro` (no syn/quote, which are unavailable offline). They parse
//! the item's token stream directly and generate `Serialize`/`Deserialize`
//! impls against the value-model serde stand-in in `.devstubs/serde`.
//!
//! Supported shapes — exactly what this workspace derives on:
//! named-field structs, tuple structs (incl. newtypes), unit structs, and
//! non-generic enums with unit / newtype / tuple / struct variants, using
//! serde's externally-tagged enum representation. The only field attribute
//! honored is `#[serde(default)]`; missing `Option<..>` fields deserialize
//! to `None` as upstream does. Anything else (generics, other serde
//! attributes) fails the build with a `compile_error!` rather than
//! silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Field {
    name: String,
    /// `#[serde(default)]` present.
    default: bool,
    /// Type's leading path segment is `Option`.
    optionish: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Ser => gen_serialize(&item),
            Mode::De => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        panic!("serde_derive stand-in generated invalid Rust ({e}):\n{code}")
    })
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` attributes; returns whether one was `#[serde(default)]`
    /// and errors on any other `#[serde(...)]` content.
    fn skip_attrs(&mut self) -> Result<bool, String> {
        let mut default = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                return Err("malformed attribute".into());
            };
            let mut inner = g.stream().into_iter();
            if let Some(TokenTree::Ident(name)) = inner.next() {
                if name.to_string() == "serde" {
                    let args = match inner.next() {
                        Some(TokenTree::Group(args)) => tokens_to_string(args.stream()),
                        _ => String::new(),
                    };
                    if args.trim() == "default" {
                        default = true;
                    } else {
                        return Err(format!(
                            "serde_derive stand-in: unsupported attribute #[serde({args})]; \
                             only #[serde(default)] is implemented"
                        ));
                    }
                }
            }
        }
        Ok(default)
    }

    /// Skips `pub`, `pub(...)`.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    /// Consumes a type (or expression) up to a top-level `,`, tracking
    /// `<`/`>` nesting so commas inside generic arguments don't split.
    /// Returns the leading path segment, e.g. `Option` for `Option<u64>`.
    fn skip_type(&mut self) -> String {
        let mut angle_depth = 0i32;
        let mut first_ident = String::new();
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Ident(i) if first_ident.is_empty() => {
                    let s = i.to_string();
                    // `::std::option::Option<..>` and `option::Option<..>`
                    // still end in Option; remember the *last* segment seen
                    // before any `<`.
                    if angle_depth == 0 {
                        first_ident = s;
                    }
                }
                TokenTree::Ident(i) if angle_depth == 0 => {
                    first_ident = i.to_string();
                }
                _ => {}
            }
            self.next();
        }
        first_ident
    }
}

fn tokens_to_string(stream: TokenStream) -> String {
    stream.to_string()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs()?;
    c.skip_vis();
    let kw = c.expect_ident()?;
    let name_kind = kw.as_str();
    if name_kind != "struct" && name_kind != "enum" {
        return Err(format!("expected struct or enum, found `{kw}`"));
    }
    let name = c.expect_ident()?;
    if c.is_punct('<') {
        return Err(format!(
            "serde_derive stand-in: generic type `{name}` is not supported"
        ));
    }
    if name_kind == "struct" {
        let fields = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream())?)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => return Err(format!("unexpected struct body: {other:?}")),
        };
        Ok(Item::Struct { name, fields })
    } else {
        let Some(TokenTree::Group(g)) = c.next() else {
            return Err("expected enum body".into());
        };
        Ok(Item::Enum {
            name,
            variants: parse_variants(g.stream())?,
        })
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let default = c.skip_attrs()?;
        c.skip_vis();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        let leading = c.skip_type();
        if c.is_punct(',') {
            c.next();
        }
        fields.push(Field {
            name: name.trim_start_matches("r#").to_owned(),
            default,
            optionish: leading == "Option",
        });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while !c.at_end() {
        c.skip_attrs()?;
        c.skip_vis();
        if c.at_end() {
            break;
        }
        c.skip_type();
        count += 1;
        if c.is_punct(',') {
            c.next();
        }
    }
    Ok(count)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs()?;
        if c.at_end() {
            break;
        }
        let name = c.expect_ident()?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream())?;
                c.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                c.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if c.is_punct('=') {
            c.next();
            c.skip_type();
        }
        if c.is_punct(',') {
            c.next();
        }
        variants.push(Variant {
            name: name.trim_start_matches("r#").to_owned(),
            fields,
        });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let pairs: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "({:?}.to_string(), ::serde::Serialize::to_value(&self.{}))",
                                f.name, f.name
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_owned(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds: Vec<String> =
                                fs.iter().map(|f| f.name.clone()).collect();
                            let pairs: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                                        f.name, f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Object(vec![{}]))]),",
                                binds.join(", "),
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// Field initializer for `from_value`: present fields deserialize; missing
/// ones fall back per `#[serde(default)]` / `Option` / hard error.
fn named_field_init(owner: &str, f: &Field, source: &str) -> String {
    let missing = if f.default {
        "::std::default::Default::default()".to_owned()
    } else if f.optionish {
        "::serde::Deserialize::from_value(&::serde::Value::Null)?".to_owned()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::custom(format!(\
             \"{owner}: missing field `{}`\")))",
            f.name
        )
    };
    format!(
        "{}: match ::serde::__get({source}, {:?}) {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::std::option::Option::None => {missing},\n\
         }},",
        f.name, f.name
    )
}

fn tuple_inits(n: usize, items: &str) -> String {
    (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&{items}[{i}])?"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| named_field_init(name, f, "__fields"))
                    .collect();
                format!(
                    "let __fields = __v.as_object().ok_or_else(|| \
                     ::serde::Error::expected(\"object\", __v))?;\n\
                     ::std::result::Result::Ok({name} {{\n{}\n}})",
                    inits.join("\n")
                )
            }
            Fields::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Fields::Tuple(n) => format!(
                "let __items = __v.as_array().ok_or_else(|| \
                 ::serde::Error::expected(\"array\", __v))?;\n\
                 if __items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(format!(\
                     \"{name}: expected {n} elements, found {{}}\", __items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                tuple_inits(*n, "__items")
            ),
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        ),
                        Fields::Tuple(n) => format!(
                            "{vn:?} => {{\n\
                                 let __items = __payload.as_array().ok_or_else(|| \
                                 ::serde::Error::expected(\"array\", __payload))?;\n\
                                 if __items.len() != {n} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"{name}::{vn}: expected {n} elements, found {{}}\", \
                                     __items.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }}",
                            tuple_inits(*n, "__items")
                        ),
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    named_field_init(&format!("{name}::{vn}"), f, "__inner")
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let __inner = __payload.as_object().ok_or_else(|| \
                                     ::serde::Error::expected(\"object\", __payload))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{\n{}\n}})\n\
                                 }}",
                                inits.join("\n")
                            )
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                         \"{name}: unknown variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __payload) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                             \"{name}: unknown variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::Error::expected(\
                     \"enum variant\", __other)),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
