//! Offline stand-in for serde, wired in via `[patch.crates-io]` in
//! `.cargo/config.toml` (see `.devstubs/README.md`).
//!
//! Unlike upstream serde's zero-copy visitor architecture, this stand-in
//! routes everything through an owned [`Value`] tree: `Serialize` lowers a
//! type to a `Value`, `Deserialize` rebuilds it from one. That is slower
//! but implements the same *data model* — structs become objects, enums
//! use the externally-tagged representation, sequences become arrays — so
//! JSON produced by upstream serde_json for these shapes parses here and
//! vice versa. The derive macros in the sibling `serde_derive` stand-in
//! generate real impls of these traits (named/tuple/unit structs, enums
//! with unit/newtype/tuple/struct variants, `#[serde(default)]`).

/// The JSON-shaped data-model value every type serializes through.
///
/// Object fields keep insertion order (a `Vec`, not a map), so derived
/// serialization is deterministic: the same value always prints the same
/// bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up a field in an object's pair list. Used by derived impls.
#[doc(hidden)]
pub fn __get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error; also what `serde_json::from_str` surfaces.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }

    pub fn expected(what: &'static str, got: &Value) -> Self {
        Error(format!("expected {what}, found {}", got.type_name()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize<'de>: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    pub use crate::{Deserialize, Error};

    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

pub mod ser {
    pub use crate::{Error, Serialize};
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if (*self as i128) < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match v {
                    Value::I64(n) => <$t>::try_from(*n).ok(),
                    Value::U64(n) => <$t>::try_from(*n).ok(),
                    other => return Err(Error::expected("integer", other)),
                };
                out.ok_or_else(|| {
                    Error(format!(
                        "integer {v:?} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    // JSON has one number type: integral literals are valid
                    // floats (serde_json accepts `3` for an f64 field).
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single-char string, found {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

macro_rules! tuple_impls {
    ($(($len:literal => $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }

        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if items.len() != $len {
                    return Err(Error(format!(
                        "expected array of length {}, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (1 => 0 A)
    (2 => 0 A, 1 B)
    (3 => 0 A, 1 B, 2 C)
    (4 => 0 A, 1 B, 2 C, 3 D)
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Upstream representation: {"secs": u64, "nanos": u32}.
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        let secs = __get(fields, "secs").ok_or_else(|| Error::custom("Duration: missing secs"))?;
        let nanos =
            __get(fields, "nanos").ok_or_else(|| Error::custom("Duration: missing nanos"))?;
        Ok(std::time::Duration::new(
            u64::from_value(secs)?,
            u32::from_value(nanos)?,
        ))
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => panic!("map key must serialize to a string, got {other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
