//! Offline stand-in for proptest, wired in via `[patch.crates-io]` in
//! `.cargo/config.toml` (see `.devstubs/README.md`).
//!
//! A real, minimal property-testing engine covering the surface this
//! workspace's property tests use: the [`proptest!`] macro (with
//! `#![proptest_config(ProptestConfig::with_cases(N))]`), integer and
//! float range strategies, strategy tuples, [`collection::vec`],
//! [`sample::select`], [`prelude::any`] and `prop_map`, plus the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports its seed and the formatted
//!   assertion message, not a minimized input.
//! - **Deterministic.** Case generation is seeded from the test name, so
//!   a failure always reproduces. Set `PROPTEST_CASES` to override the
//!   default 256 cases per test.

/// xoshiro256++ generator driving all value generation.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, stirred per case with splitmix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = h.wrapping_add(u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut s = [0u64; 4];
        for slot in &mut s {
            // splitmix64 expansion.
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0
            .wrapping_add(s3)
            .rotate_left(23)
            .wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform in `[0, bound)` via Lemire-style rejection.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of one type. Upstream's `Strategy` is a shrink
/// tree; here it is just a generation function.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width u64 range: every value is fair game.
                    rng.next_u64() as $t
                } else {
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident . $n:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `any::<T>()` support. Implemented for the types the workspace asks for.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)`: a `Vec` whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    /// `select(choices)`: one of the given values, uniformly.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select requires at least one choice");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].clone()
        }
    }
}

/// Per-test configuration, set via
/// `#![proptest_config(ProptestConfig::with_cases(N))]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a single test case failed; produced by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail<T: std::fmt::Display>(msg: T) -> Self {
        TestCaseError(msg.to_string())
    }
}

pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError};
    use super::{Strategy, TestRng};

    /// Drives one proptest-macro test: `config.cases` generated inputs,
    /// panicking (like an ordinary failed test) on the first case whose
    /// closure returns `Err`.
    pub fn run<S: Strategy>(
        config: &ProptestConfig,
        name: &str,
        strategy: S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) {
        for case in 0..config.cases {
            let mut rng = TestRng::seed_from(name, case);
            let input = strategy.generate(&mut rng);
            if let Err(e) = test(input) {
                panic!(
                    "proptest case {case}/{} failed for `{name}`: {}\n\
                     (deterministic stand-in: rerun reproduces this case; no shrinking)",
                    config.cases, e.0
                );
            }
        }
    }
}

pub mod prelude {
    pub use super::{
        collection, sample, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// `any::<T>()`: arbitrary value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                __a,
                __b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} ({})\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                __a
            )));
        }
    }};
}

/// The `proptest!` block: expands each contained `#[test] fn name(arg in
/// strategy, ...) { .. }` into an ordinary test that runs the body over
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(
                &__config,
                stringify!($name),
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
